#include "uarch/core.h"

#include <algorithm>
#include <cassert>

namespace whisper::uarch {

namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;

/// First source register read by an instruction (Reg::None if none).
Reg reg_a(const Instruction& in) {
  switch (in.op) {
    case Opcode::MovRR: return in.src;
    case Opcode::AvxOp: return in.src;  // optional data dependency
    case Opcode::Load:
    case Opcode::LoadByte:
    case Opcode::Store:
    case Opcode::StoreByte:
    case Opcode::Clflush:
    case Opcode::Prefetch:
      return in.base;
    case Opcode::AddRI: case Opcode::SubRI: case Opcode::AndRI:
    case Opcode::OrRI: case Opcode::ShlRI: case Opcode::ShrRI:
    case Opcode::CmpRI:
    case Opcode::AddRR: case Opcode::SubRR: case Opcode::XorRR:
    case Opcode::CmpRR: case Opcode::TestRR:
    case Opcode::ImulRR: case Opcode::FdivRR:
    case Opcode::Neg: case Opcode::Not:
    case Opcode::Cmov:
      return in.dst;
    case Opcode::Lea:
      return in.base;
    case Opcode::Call:
    case Opcode::Ret:
      return Reg::RSP;
    default:
      return Reg::None;
  }
}

/// Second source register (Reg::None if none).
Reg reg_b(const Instruction& in) {
  switch (in.op) {
    case Opcode::Store:
    case Opcode::StoreByte:
      return in.src;
    case Opcode::AddRR: case Opcode::SubRR: case Opcode::XorRR:
    case Opcode::CmpRR: case Opcode::TestRR:
    case Opcode::ImulRR: case Opcode::FdivRR: case Opcode::Cmov:
      return in.src;
    default:
      return Reg::None;
  }
}

/// Register architecturally written (Reg::None if none).
Reg reg_written(const Instruction& in) {
  switch (in.op) {
    case Opcode::MovRI: case Opcode::MovRR:
    case Opcode::Load: case Opcode::LoadByte:
    case Opcode::AddRI: case Opcode::AddRR:
    case Opcode::SubRI: case Opcode::SubRR:
    case Opcode::AndRI: case Opcode::OrRI: case Opcode::XorRR:
    case Opcode::ShlRI: case Opcode::ShrRI:
    case Opcode::ImulRR: case Opcode::FdivRR:
    case Opcode::Neg: case Opcode::Not:
    case Opcode::Lea: case Opcode::Cmov:
    case Opcode::Rdtsc: case Opcode::Rdtscp:
      return in.dst;
    case Opcode::Call:
    case Opcode::Ret:
      return Reg::RSP;  // stack pointer adjustment
    default:
      return Reg::None;
  }
}

isa::Flags alu_flags(std::uint64_t result, bool carry, bool overflow) {
  isa::Flags f;
  f.zf = result == 0;
  f.sf = (result >> 63) & 1;
  f.cf = carry;
  f.of = overflow;
  return f;
}

constexpr std::int32_t kInstrBlock = 8;  // instructions per DSB/fetch block

}  // namespace

// ---------------------------------------------------------------------------
// RobRing
// ---------------------------------------------------------------------------

void Core::RobRing::grow() {
  const std::size_t new_cap = buf_.empty() ? kInitialCap : buf_.size() * 2;
  std::vector<RobEntry> nbuf(new_cap);
  std::vector<EntryState> nstate(new_cap);
  std::vector<std::uint64_t> ncomplete(new_cap);
  std::vector<std::uint64_t> nseq(new_cap);
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t p = (head_ + i) & mask_;
    nbuf[i] = std::move(buf_[p]);
    nstate[i] = state_[p];
    ncomplete[i] = complete_[p];
    nseq[i] = seq_[p];
  }
  buf_ = std::move(nbuf);
  state_ = std::move(nstate);
  complete_ = std::move(ncomplete);
  seq_ = std::move(nseq);
  head_ = 0;
  mask_ = new_cap - 1;
}

void Core::RobRing::push_back(RobEntry e) {
  if (size_ == buf_.size()) grow();
  const std::size_t p = (head_ + size_) & mask_;
  state_[p] = e.state;
  complete_[p] = e.complete_at;
  seq_[p] = e.seq;
  buf_[p] = std::move(e);
  ++size_;
}

Core::RobEntry* Core::RobRing::by_seq(std::uint64_t seq) noexcept {
  std::size_t lo = 0;
  std::size_t hi = size_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t p = (head_ + mid) & mask_;
    const std::uint64_t s = seq_[p];
    if (s == seq) return &buf_[p];
    if (s < seq)
      lo = mid + 1;
    else
      hi = mid;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Census / rename bookkeeping
// ---------------------------------------------------------------------------

void Core::account_alloc(ThreadCtx& ctx, const RobEntry& e) {
  ++ctx.waiting_count;
  const Instruction& in = e.inst;
  if (in.is_fence()) ctx.fence_seqs.push_back(e.seq);
  if (in.is_store()) ++ctx.pending_stores;
  if (in.op == Opcode::Clflush) ++ctx.pending_clflush;
  if (in.op == Opcode::Jcc) ++ctx.pending_jcc;
  if (in.op == Opcode::Ret) ++ctx.pending_ret;
  if (in.op == Opcode::FdivRR) ++ctx.pending_div;
}

void Core::account_issue(ThreadCtx& ctx, const RobEntry& e) {
  --ctx.waiting_count;
  if (e.inst.is_load()) ++ctx.issued_loads;
  if (e.inst.op == Opcode::FdivRR) --ctx.pending_div;
}

void Core::account_done(ThreadCtx& ctx, const RobEntry& e) {
  ++ctx.done_count;
  const Instruction& in = e.inst;
  if (in.is_load()) --ctx.issued_loads;
  if (in.is_fence()) {
    assert(!ctx.fence_seqs.empty() && ctx.fence_seqs.front() == e.seq);
    ctx.fence_seqs.erase(ctx.fence_seqs.begin());
  }
  if (in.is_store()) --ctx.pending_stores;
  if (in.op == Opcode::Clflush) --ctx.pending_clflush;
  if (in.op == Opcode::Jcc) --ctx.pending_jcc;
  if (in.op == Opcode::Ret) --ctx.pending_ret;
}

void Core::account_remove(ThreadCtx& ctx, const RobEntry& e) {
  switch (e.state) {
    case EntryState::Waiting:
      --ctx.waiting_count;
      if (e.inst.op == Opcode::FdivRR) --ctx.pending_div;
      break;
    case EntryState::Issued:
      if (e.inst.is_load()) --ctx.issued_loads;
      break;
    case EntryState::Done: --ctx.done_count; break;
  }
  if (e.state != EntryState::Done) {
    const Instruction& in = e.inst;
    if (in.is_fence()) {
      assert(!ctx.fence_seqs.empty() && ctx.fence_seqs.back() == e.seq);
      ctx.fence_seqs.pop_back();
    }
    if (in.is_store()) --ctx.pending_stores;
    if (in.op == Opcode::Clflush) --ctx.pending_clflush;
    if (in.op == Opcode::Jcc) --ctx.pending_jcc;
    if (in.op == Opcode::Ret) --ctx.pending_ret;
  }
  if (e.fault != mem::Fault::None) --ctx.pending_faults;
}

void Core::unrename(ThreadCtx& ctx, const RobEntry& e) {
  // Restore the map values this entry displaced. Squashes pop youngest-
  // first, so the checkpoints unwind in exact reverse-allocation order.
  // A restored value may reference an entry that retired in the meantime;
  // such a stale seq reads identically to 0 everywhere (architectural
  // value, ready, untainted).
  if (e.writes_reg &&
      ctx.reg_writer[static_cast<std::size_t>(e.dst)] == e.seq)
    ctx.reg_writer[static_cast<std::size_t>(e.dst)] = e.prev_reg_writer;
  if (e.writes_flags && ctx.flags_writer == e.seq)
    ctx.flags_writer = e.prev_flags_writer;
}

// ---------------------------------------------------------------------------
// Decode cache
// ---------------------------------------------------------------------------

std::shared_ptr<const Core::DecodedProgram> Core::decoded_for(
    const isa::Program& prog) {
  const std::uint64_t key = prog.content_hash();
  for (std::size_t i = 0; i < decode_cache_.size(); ++i) {
    if (decode_cache_[i].first == key) {
      ++decode_stats_.hits;
      if (i != 0)
        std::rotate(decode_cache_.begin(), decode_cache_.begin() + i,
                    decode_cache_.begin() + i + 1);
      return decode_cache_.front().second;
    }
  }
  ++decode_stats_.misses;
  auto dp = std::make_shared<DecodedProgram>();
  dp->insts.reserve(prog.code().size());
  for (const Instruction& in : prog.code()) {
    DecodedInst di;
    di.src_a = reg_a(in);
    di.src_b = reg_b(in);
    di.dst = reg_written(in);
    di.uops = static_cast<std::int8_t>(in.uops());
    di.writes_flags = in.writes_flags();
    dp->insts.push_back(di);
  }
  decode_cache_.insert(decode_cache_.begin(), {key, dp});
  if (decode_cache_.size() > kDecodeCacheCap) decode_cache_.pop_back();
  return dp;
}

Core::Core(const CpuConfig& cfg, mem::MemorySystem& mem)
    : cfg_(cfg), mem_(mem), pmu_(cfg.vendor), bpu_(cfg),
      rng_(cfg.seed ^ 0xc04e5eedULL) {
  mem_.set_counter_window(pmu_.mem_counter_window());
}

void Core::recycle(ThreadCtx& ctx) {
  RobRing rob = std::move(ctx.rob);
  Ring<IdqEntry> idq = std::move(ctx.idq);
  std::unordered_set<std::int32_t> dsb = std::move(ctx.dsb_blocks);
  std::vector<std::uint64_t> tsc = std::move(ctx.tsc_out);
  std::vector<std::uint64_t> fences = std::move(ctx.fence_seqs);
  rob.clear();
  idq.clear();
  dsb.clear();
  tsc.clear();
  fences.clear();
  ctx = ThreadCtx{};
  ctx.rob = std::move(rob);
  ctx.idq = std::move(idq);
  ctx.dsb_blocks = std::move(dsb);
  ctx.tsc_out = std::move(tsc);
  ctx.fence_seqs = std::move(fences);
}

void Core::reset(std::uint64_t seed) {
  cfg_.seed = seed;
  cfg_.mem.seed = seed;
  pmu_.reset();
  bpu_.reset();
  rng_ = stats::Xoshiro256(seed ^ 0xc04e5eedULL);
  cycle_ = 0;
  avx_warm_until_ = 0;
  divider_busy_until_ = 0;
  shared_frontend_busy_until_ = 0;
  nthreads_ = 1;
  for (ThreadCtx& ctx : ctx_) recycle(ctx);
  last_prog_ = {};
  for (auto& dsb : persistent_dsb_) dsb.clear();
  issued_uops_this_cycle_ = 0;
  alloc_uops_this_cycle_ = 0;
}

RunResult Core::run(const isa::Program& prog, const InitState& init,
                    std::uint64_t cycle_limit) {
  nthreads_ = 1;
  recycle(ctx_[0]);
  ctx_[0].active = true;
  ctx_[0].prog = &prog;
  ctx_[0].dec = decoded_for(prog);
  ctx_[0].regs = init.regs;
  ctx_[0].flags = init.flags;
  ctx_[0].user_mode = init.user_mode;
  ctx_[0].signal_handler = init.signal_handler;
  ctx_[0].code_base = init.code_base;
  if (last_prog_[0] == &prog) ctx_[0].dsb_blocks = std::move(persistent_dsb_[0]);
  recycle(ctx_[1]);
  RunResult r = run_internal(cycle_limit);
  last_prog_[0] = &prog;
  persistent_dsb_[0] = std::move(ctx_[0].dsb_blocks);
  last_prog_[1] = nullptr;
  return r;
}

RunResult Core::run_smt(const isa::Program& p0, const InitState& i0,
                        const isa::Program& p1, const InitState& i1,
                        std::uint64_t cycle_limit) {
  nthreads_ = 2;
  for (int t = 0; t < 2; ++t) {
    const isa::Program& p = t == 0 ? p0 : p1;
    const InitState& init = t == 0 ? i0 : i1;
    recycle(ctx_[t]);
    ctx_[t].active = true;
    ctx_[t].prog = &p;
    ctx_[t].dec = decoded_for(p);
    ctx_[t].regs = init.regs;
    ctx_[t].flags = init.flags;
    ctx_[t].user_mode = init.user_mode;
    ctx_[t].signal_handler = init.signal_handler;
    ctx_[t].code_base = init.code_base;
    if (last_prog_[t] == &p) ctx_[t].dsb_blocks = std::move(persistent_dsb_[t]);
  }
  RunResult r = run_internal(cycle_limit);
  for (int t = 0; t < 2; ++t) {
    last_prog_[t] = t == 0 ? &p0 : &p1;
    persistent_dsb_[t] = std::move(ctx_[t].dsb_blocks);
  }
  return r;
}

RunResult Core::run_internal(std::uint64_t cycle_limit) {
  RunResult result;
  result.start_cycle = cycle_;
  const std::uint64_t deadline = cycle_ + cycle_limit;

  auto all_done = [&] {
    for (int t = 0; t < nthreads_; ++t)
      if (ctx_[t].active && !ctx_[t].halted) return false;
    return true;
  };

  // An interrupt raised by the noise hook while fast-forwarding is carried
  // here into the next structural cycle, so the hook fires exactly once per
  // simulated cycle in both modes.
  std::uint64_t pending_interrupt = 0;
  while (!all_done()) {
    if (cycle_ >= deadline) {
      result.cycle_limit_hit = true;
      break;
    }
    if (pending_interrupt == 0 && try_fast_forward(deadline, pending_interrupt))
      continue;

    issued_uops_this_cycle_ = 0;
    alloc_uops_this_cycle_ = 0;

    if (pending_interrupt != 0) {
      inject_interrupt(pending_interrupt);
      pending_interrupt = 0;
    } else if (noise_) {
      const std::uint64_t handler = noise_->on_cycle(cycle_);
      if (handler != 0) inject_interrupt(handler);
    }

    step_complete();
    for (int t = 0; t < nthreads_; ++t)
      if (ctx_[t].active && !ctx_[t].halted) step_retire(t);
    step_issue();
    // Allocation and fetch bandwidth alternates between SMT siblings.
    const int turn = nthreads_ > 1 ? static_cast<int>(cycle_ % 2) : 0;
    if (ctx_[turn].active && !ctx_[turn].halted) {
      step_alloc(turn);
      step_fetch(turn);
    }
    per_cycle_pmu();
    ++cycle_;
  }

  result.end_cycle = cycle_;
  for (int t = 0; t < 2; ++t) {
    ThreadResult& tr = result.thread[static_cast<std::size_t>(t)];
    tr.halted = ctx_[t].halted;
    tr.killed_by_fault = ctx_[t].killed;
    tr.instructions_retired = ctx_[t].retired;
    tr.tsc = ctx_[t].tsc_out;
    tr.regs = ctx_[t].regs;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fast-forward
// ---------------------------------------------------------------------------

bool Core::try_fast_forward(std::uint64_t deadline,
                            std::uint64_t& pending_interrupt) {
  // SMT runs always step structurally: the siblings' alternating alloc/fetch
  // turns and cross-thread front-end stalls make inert spans rare and the
  // proof obligations heavier, while every covert-channel trial is short.
  if (!fast_forward_ || nthreads_ != 1) return false;
  ThreadCtx& ctx = ctx_[0];
  if (!ctx.active || ctx.halted) return false;

  std::uint64_t horizon = deadline;

  // Retirement acts as soon as the ROB head is Done (including a deferred
  // fault turning into a machine clear).
  if (!ctx.rob.empty() && ctx.rob.state_at(0) == EntryState::Done)
    return false;

  // Completion, forwarding wake-ups and issue eligibility: one sweep over
  // the SoA mirrors. Any Issued entry already due completes this cycle; any
  // Waiting entry that passes the (side-effect-free) issue checks would
  // issue this cycle — port capacity is irrelevant, since every port class
  // admits at least one uop into an otherwise-empty issue group.
  const std::size_t n = ctx.rob.size();
  for (std::size_t i = 0; i < n; ++i) {
    const EntryState s = ctx.rob.state_at(i);
    if (s == EntryState::Issued) {
      const std::uint64_t c = ctx.rob.complete_at(i);
      if (c <= cycle_) return false;
      if (c < horizon) horizon = c;
      const std::uint64_t f = ctx.rob[i].forward_at;
      if (f > cycle_ && f < horizon) horizon = f;
    } else if (s == EntryState::Waiting && issue_ready(ctx, ctx.rob[i])) {
      return false;
    }
  }

  // Divider occupancy: a Waiting divide that passed nothing above may still
  // be gated purely on the busy divider, and the divide that latched the
  // occupancy may have been squashed (no Issued entry bounds the horizon
  // for it). The pending_div census says whether the gate can matter; when
  // it can, the unit's release is a wake-up the skip must not overshoot.
  if (ctx.pending_div > 0 && divider_busy_until_ > cycle_ &&
      divider_busy_until_ < horizon)
    horizon = divider_busy_until_;

  // Allocation: would step_alloc change anything this cycle, and does it
  // charge the resource-stall events while blocked?
  const bool idq_nonempty = !ctx.idq.empty();
  bool alloc_resource_stall = false;
  if (cycle_ < ctx.alloc_stall_until) {
    if (idq_nonempty) {
      alloc_resource_stall = true;
      if (ctx.alloc_stall_until < horizon) horizon = ctx.alloc_stall_until;
    }
  } else if (idq_nonempty) {
    if (ctx.idq.front().uops <= cfg_.alloc_width) {
      if (ctx.rob.size() < static_cast<std::size_t>(cfg_.rob_size) &&
          ctx.waiting_count < cfg_.rs_size && !alloc_window_clamped(ctx))
        return false;  // would allocate
      alloc_resource_stall = true;  // blocked on ROB/RS/window tokens
    }
  }

  // Fetch, mirroring step_fetch's early-out order exactly: the time gate is
  // checked before the bounds/bubble cases, so a time-gated front end is
  // inert regardless of them.
  if (!ctx.fetch_halted) {
    const std::uint64_t ready =
        std::max(ctx.frontend_ready_at, shared_frontend_busy_until_);
    if (cycle_ < ready) {
      if (ready < horizon) horizon = ready;
    } else {
      const auto& code = ctx.prog->code();
      if (ctx.fetch_pc < 0 ||
          static_cast<std::size_t>(ctx.fetch_pc) >= code.size())
        return false;  // would set fetch_halted
      const std::int32_t first_block = ctx.fetch_pc / kInstrBlock;
      const bool dsb_cycle =
          ctx.force_mite == 0 && ctx.dsb_blocks.contains(first_block);
      if (!dsb_cycle && ctx.pending_mite_bubble)
        return false;  // would pay the MITE-switch bubble
      if (ctx.idq.size() < static_cast<std::size_t>(cfg_.idq_size))
        return false;  // would fetch into the IDQ
      // IDQ full: the fetch loop breaks before touching any state.
    }
  }

  if (horizon <= cycle_) return false;

  // Every skipped cycle charges the same per-cycle PMU vector the structural
  // loop would: nothing issues, allocates or retires during the span, and
  // the census inputs below are constant across it (nothing transitions).
  const bool amd = cfg_.vendor == Vendor::Amd;
  const bool mem_any = ctx.issued_loads > 0;
  const bool rs_empty = ctx.waiting_count == 0;
  const bool idq_empty_amd = amd && ctx.idq.empty();

  auto charge = [&](std::uint64_t span) {
    pmu_.inc(PmuEvent::CORE_CYCLES, span);
    pmu_.inc(PmuEvent::UOPS_EXECUTED_STALL_CYCLES, span);
    pmu_.inc(PmuEvent::UOPS_EXECUTED_CORE_CYCLES_NONE, span);
    pmu_.inc(PmuEvent::CYCLE_ACTIVITY_STALLS_TOTAL, span);
    pmu_.inc(PmuEvent::UOPS_ISSUED_STALL_CYCLES, span);
    if (mem_any) pmu_.inc(PmuEvent::CYCLE_ACTIVITY_CYCLES_MEM_ANY, span);
    if (rs_empty) pmu_.inc(PmuEvent::RS_EVENTS_EMPTY_CYCLES, span);
    if (idq_empty_amd) pmu_.inc(PmuEvent::DE_DIS_UOP_QUEUE_EMPTY_DI0, span);
    if (alloc_resource_stall) {
      pmu_.inc(PmuEvent::RESOURCE_STALLS_ANY, span);
      if (amd)
        pmu_.inc(PmuEvent::DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL,
                 span);
    }
  };

  if (!noise_) {
    charge(horizon - cycle_);
    cycle_ = horizon;
    return true;
  }
  // With a noise source attached the hook must still run once per cycle
  // (its schedule is stateful, and it may mutate memory state that the
  // pipeline doesn't observe during an inert span). An interrupt hands the
  // cycle back to the structural loop before it is charged or advanced.
  while (cycle_ < horizon) {
    const std::uint64_t handler = noise_->on_cycle(cycle_);
    if (handler != 0) {
      pending_interrupt = handler;
      return true;
    }
    charge(1);
    ++cycle_;
  }
  return true;
}

void Core::trace(int thread, TraceEvent event, const RobEntry* e,
                 std::uint64_t count) {
  if (!trace_) return;
  TraceRecord r;
  r.cycle = cycle_;
  r.thread = thread;
  r.event = event;
  if (e) {
    r.seq = e->seq;
    r.pc = e->pc;
    r.op = e->inst.op;
  } else {
    r.seq = count;
  }
  trace_->record(r);
}

void Core::trace_raw(int thread, TraceEvent event, std::int32_t pc,
                     isa::Opcode op, std::uint64_t seq) {
  if (!trace_) return;
  TraceRecord r;
  r.cycle = cycle_;
  r.thread = thread;
  r.event = event;
  r.seq = seq;
  r.pc = pc;
  r.op = op;
  trace_->record(r);
}

// ---------------------------------------------------------------------------
// Front end
// ---------------------------------------------------------------------------

void Core::step_fetch(int t) {
  ThreadCtx& ctx = ctx_[t];
  if (ctx.fetch_halted) return;
  if (cycle_ < std::max(ctx.frontend_ready_at, shared_frontend_busy_until_))
    return;

  const auto& code = ctx.prog->code();
  if (ctx.fetch_pc < 0 ||
      static_cast<std::size_t>(ctx.fetch_pc) >= code.size()) {
    ctx.fetch_halted = true;  // ran off the end
    return;
  }

  // Decide the delivery path for this cycle from the first block fetched.
  const std::int32_t first_block = ctx.fetch_pc / kInstrBlock;
  // After a resteer the pipeline restarts through the legacy decoder for a
  // couple of fetch groups even if the target lines are DSB-resident —
  // the Fig. 3 DSB->MITE shift.
  const bool dsb_cycle =
      ctx.force_mite == 0 && ctx.dsb_blocks.contains(first_block);
  if (!dsb_cycle && ctx.pending_mite_bubble) {
    // Switching to the legacy decoder costs a fetch bubble; the paper's
    // trigger path pays this after the transient resteer (Fig. 3).
    ctx.pending_mite_bubble = false;
    ctx.frontend_ready_at = cycle_ + cfg_.mite_decode_latency;
    pmu_.inc(PmuEvent::ICACHE_16B_IFDATA_STALL,
             static_cast<std::uint64_t>(cfg_.mite_decode_latency));
    return;
  }

  const int width = dsb_cycle ? cfg_.fetch_width_dsb : cfg_.fetch_width_mite;
  int budget = width;
  int dsb_uops = 0, mite_uops = 0;
  bool ms_dsb = false;

  while (budget > 0) {
    if (ctx.fetch_pc < 0 ||
        static_cast<std::size_t>(ctx.fetch_pc) >= code.size()) {
      ctx.fetch_halted = true;
      break;
    }
    if (ctx.idq.size() >= static_cast<std::size_t>(cfg_.idq_size)) break;
    const std::int32_t block = ctx.fetch_pc / kInstrBlock;
    const bool in_dsb =
        ctx.force_mite == 0 && ctx.dsb_blocks.contains(block);
    if (in_dsb != dsb_cycle) break;  // path switch: next cycle
    const Instruction& inst = code[static_cast<std::size_t>(ctx.fetch_pc)];
    const int uops =
        ctx.dec->insts[static_cast<std::size_t>(ctx.fetch_pc)].uops;
    if (uops > budget) break;

    IdqEntry fe;
    fe.pc = ctx.fetch_pc;
    fe.inst = inst;
    fe.uops = uops;
    fe.from_dsb = in_dsb;
    if (!in_dsb) ctx.dsb_blocks.insert(block);  // decoded lines fill the DSB

    if (in_dsb) {
      dsb_uops += uops;
      if (uops > 1) {
        ms_dsb = true;
        // Microcode-sequencer uops tracked on the DSB path; a resteer that
        // diverts delivery to MITE lowers this count (Table 3: MS_UOPS
        // drops on trigger while MS_MITE_UOPS rises).
        pmu_.inc(PmuEvent::IDQ_MS_UOPS, static_cast<std::uint64_t>(uops));
      }
    } else {
      mite_uops += uops;
    }

    bool taken = false;
    switch (inst.op) {
      case Opcode::Jcc: {
        BranchPrediction p = bpu_.predict_cond(fe.pc, inst.target);
        fe.predicted_taken = p.taken;
        fe.predicted_target = inst.target;
        if (p.taken) {
          ctx.fetch_pc = inst.target;
          taken = true;
        } else {
          ++ctx.fetch_pc;
        }
        break;
      }
      case Opcode::Jmp:
        fe.predicted_taken = true;
        fe.predicted_target = inst.target;
        ctx.fetch_pc = inst.target;
        taken = true;
        break;
      case Opcode::Call:
        bpu_.rsb_push(fe.pc + 1);
        fe.predicted_taken = true;
        fe.predicted_target = inst.target;
        ctx.fetch_pc = inst.target;
        taken = true;
        break;
      case Opcode::Ret: {
        BranchPrediction p = bpu_.predict_ret();
        fe.pred_from_rsb = true;
        fe.predicted_taken = p.taken;
        fe.predicted_target = p.target;
        if (p.target >= 0) {
          ctx.fetch_pc = p.target;
          taken = true;
        } else {
          // No RSB prediction: the front end stalls until resolution.
          ctx.fetch_halted = true;
        }
        break;
      }
      case Opcode::Halt:
        ctx.fetch_halted = true;
        break;
      default:
        ++ctx.fetch_pc;
        break;
    }

    budget -= uops;
    trace_raw(t, TraceEvent::Fetch, fe.pc, fe.inst.op, 0);
    ctx.idq.push_back(std::move(fe));
    if (taken || ctx.fetch_halted) break;  // one taken branch per cycle
  }

  // Front-end delivery PMU accounting.
  if (dsb_uops > 0) {
    pmu_.inc(PmuEvent::IDQ_DSB_UOPS, static_cast<std::uint64_t>(dsb_uops));
    pmu_.inc(PmuEvent::IDQ_DSB_CYCLES_ANY);
    if (dsb_uops >= cfg_.fetch_width_dsb)
      pmu_.inc(PmuEvent::IDQ_DSB_CYCLES_OK);
    if (ms_dsb) pmu_.inc(PmuEvent::IDQ_MS_DSB_CYCLES);
  }
  if (mite_uops > 0) {
    pmu_.inc(PmuEvent::IDQ_MS_MITE_UOPS,
             static_cast<std::uint64_t>(mite_uops));
    pmu_.inc(PmuEvent::IDQ_ALL_MITE_CYCLES_ANY_UOPS);
    // Falling back to MITE means the next DSB fetch pays the switch bubble.
    ctx.pending_mite_bubble = false;
    if (ctx.force_mite > 0) --ctx.force_mite;
  }
  if (cfg_.vendor == Vendor::Amd && (dsb_uops > 0 || mite_uops > 0)) {
    pmu_.inc(PmuEvent::IC_FW32);
    pmu_.inc(PmuEvent::BP_L1_TLB_FETCH_HIT);
    pmu_.inc(PmuEvent::BP_L1_BTB_CORRECT);  // next-line prediction
  }
}

// ---------------------------------------------------------------------------
// Allocation (rename)
// ---------------------------------------------------------------------------

void Core::step_alloc(int t) {
  ThreadCtx& ctx = ctx_[t];
  if (cycle_ < ctx.alloc_stall_until) {
    if (!ctx.idq.empty()) {
      pmu_.inc(PmuEvent::RESOURCE_STALLS_ANY);
      if (cfg_.vendor == Vendor::Amd)
        pmu_.inc(
            PmuEvent::DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL);
    }
    return;
  }

  int budget = cfg_.alloc_width;

  while (!ctx.idq.empty() && budget >= ctx.idq.front().uops) {
    if (ctx.rob.size() >= static_cast<std::size_t>(cfg_.rob_size) ||
        ctx.waiting_count >= cfg_.rs_size || alloc_window_clamped(ctx)) {
      pmu_.inc(PmuEvent::RESOURCE_STALLS_ANY);
      if (cfg_.vendor == Vendor::Amd)
        pmu_.inc(
            PmuEvent::DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL);
      break;
    }
    IdqEntry fe = std::move(ctx.idq.front());
    ctx.idq.pop_front();

    const DecodedInst& di = ctx.dec->insts[static_cast<std::size_t>(fe.pc)];
    RobEntry e;
    e.seq = ctx.next_seq++;
    e.pc = fe.pc;
    e.inst = fe.inst;
    e.uops = fe.uops;
    e.predicted_taken = fe.predicted_taken;
    e.predicted_target = fe.predicted_target;
    e.pred_from_rsb = fe.pred_from_rsb;

    // Producers come straight from the rename map: the youngest in-flight
    // writer of each operand, read before this entry claims the map itself.
    e.prod_a = di.src_a != Reg::None
                   ? ctx.reg_writer[static_cast<std::size_t>(di.src_a)]
                   : 0;
    e.prod_b = di.src_b != Reg::None
                   ? ctx.reg_writer[static_cast<std::size_t>(di.src_b)]
                   : 0;
    if (e.inst.reads_flags()) e.prod_flags = ctx.flags_writer;

    e.dst = di.dst;
    e.writes_reg = di.dst != Reg::None;
    e.writes_flags = di.writes_flags;
    if (e.writes_reg) {
      e.prev_reg_writer = ctx.reg_writer[static_cast<std::size_t>(di.dst)];
      ctx.reg_writer[static_cast<std::size_t>(di.dst)] = e.seq;
    }
    if (e.writes_flags) {
      e.prev_flags_writer = ctx.flags_writer;
      ctx.flags_writer = e.seq;
    }

    budget -= e.uops;
    alloc_uops_this_cycle_ += e.uops;
    pmu_.inc(PmuEvent::UOPS_ISSUED_ANY, static_cast<std::uint64_t>(e.uops));
    trace(t, TraceEvent::Alloc, &e);
    account_alloc(ctx, e);
    ctx.rob.push_back(std::move(e));
  }
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

Core::RobEntry* Core::find_entry(ThreadCtx& ctx, std::uint64_t seq) {
  return ctx.rob.by_seq(seq);
}

bool Core::operand_ready(ThreadCtx& ctx, std::uint64_t producer) const {
  if (producer == 0) return true;
  if (const RobEntry* e = ctx.rob.by_seq(producer))
    return e->state != EntryState::Waiting && cycle_ >= e->forward_at;
  return true;  // producer already retired: value is architectural
}

std::uint64_t Core::read_operand(ThreadCtx& ctx, Reg r,
                                 std::uint64_t producer) {
  if (r == Reg::None) return 0;
  if (producer != 0) {
    if (RobEntry* e = find_entry(ctx, producer)) return e->result;
  }
  return ctx.regs[static_cast<std::size_t>(r)];
}

isa::Flags Core::read_flags(ThreadCtx& ctx, std::uint64_t producer) {
  if (producer != 0) {
    if (RobEntry* e = find_entry(ctx, producer)) return e->flags_out;
  }
  return ctx.flags;
}

bool Core::operand_tainted(ThreadCtx& ctx, std::uint64_t producer) {
  if (producer == 0) return false;
  if (RobEntry* e = find_entry(ctx, producer)) return e->stale_tainted;
  return false;
}

bool Core::fence_blocks(const ThreadCtx& ctx, std::uint64_t seq) const {
  // The fence_seqs census is exactly the non-Done fences in ascending seq
  // order, so "an older fence is pending" is a front() comparison.
  return !ctx.fence_seqs.empty() && ctx.fence_seqs.front() < seq;
}

bool Core::alloc_window_clamped(const ThreadCtx& ctx) const {
  // "window" defense (defense::registry()): allocation stops once
  // speculation_window_limit uops sit younger than the oldest unresolved
  // window opener — the same opener set older_window_exists() scans for.
  // Side-effect free and constant across an inert span (entry states only
  // change at completion/retire, which bound the fast-forward horizon), so
  // step_alloc and the try_fast_forward dry run share it — the invariant-10
  // contract for new allocation gates.
  if (cfg_.speculation_window_limit <= 0) return false;
  if (ctx.pending_faults == 0 && ctx.pending_ret == 0 && ctx.pending_jcc == 0)
    return false;
  for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
    const RobEntry& e = ctx.rob[i];
    const bool opener =
        e.fault != mem::Fault::None ||
        ((e.inst.op == Opcode::Jcc || e.inst.op == Opcode::Ret) &&
         e.state != EntryState::Done);
    if (opener)
      return ctx.rob.size() - (i + 1) >=
             static_cast<std::size_t>(cfg_.speculation_window_limit);
  }
  return false;
}

bool Core::older_window_exists(const ThreadCtx& ctx,
                               std::uint64_t seq) const {
  if (ctx.pending_faults == 0 && ctx.pending_ret == 0 && ctx.pending_jcc == 0)
    return false;
  for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
    const RobEntry& e = ctx.rob[i];
    if (e.seq >= seq) break;
    if (e.fault != mem::Fault::None) return true;
    if (e.inst.op == Opcode::Ret && e.state != EntryState::Done) return true;
    // Any unresolved older conditional branch keeps execution speculative —
    // the Spectre-V1 window (bounds check pending on a slow load).
    if (e.inst.op == Opcode::Jcc && e.state != EntryState::Done) return true;
  }
  return false;
}

void Core::step_issue() {
  int loads = 0, stores = 0, branches = 0;
  int issued = 0;
  for (int t = 0; t < nthreads_; ++t) {
    ThreadCtx& ctx = ctx_[t];
    if (!ctx.active || ctx.halted) continue;
    // Oldest-first scheduling. Entries may be squashed by a resteer mid-
    // scan, so re-check validity through indices into the ring. The census
    // bounds the sweep: once `remaining` Waiting entries have been visited
    // the tail of the ROB is all Issued/Done and can be skipped. A mid-scan
    // squash only ever removes Waiting entries, so the snapshot overcounts
    // at worst (extra harmless iterations, never a missed entry).
    int remaining = ctx.waiting_count;
    for (std::size_t i = 0; remaining > 0 && i < ctx.rob.size(); ++i) {
      if (issued >= cfg_.issue_width) break;
      if (ctx.rob.state_at(i) != EntryState::Waiting) continue;
      --remaining;
      try_issue_entry(ctx, ctx.rob[i], loads, stores, branches, issued);
      // A branch misprediction squashes younger entries; the loop bound
      // shrinks naturally via ctx.rob.size().
    }
  }
  issued_uops_this_cycle_ = issued;
}

bool Core::issue_ready(ThreadCtx& ctx, const RobEntry& e) {
  const Instruction& in = e.inst;

  // Non-pipelined divider: a divide cannot issue while the unit iterates on
  // an earlier one — regardless of which (possibly squashed) divide latched
  // the occupancy. Side-effect free like every check here; the fast-forward
  // dry run shares it, with its horizon clamped to divider_busy_until_.
  if (in.op == Opcode::FdivRR && cycle_ < divider_busy_until_) return false;

  // Dispatch serialisation: LFENCE/MFENCE block younger issue.
  if (fence_blocks(ctx, e.seq)) return false;

  // "lfence" defense (defense::registry()): as if the compiler placed an
  // LFENCE after every Jcc — nothing younger than an unresolved conditional
  // branch may issue. The branch itself still issues (the scan stops at
  // e.seq), so resolution always makes progress. Side-effect free like the
  // rest of this predicate; the fast-forward dry run shares it unchanged.
  if (cfg_.lfence_after_branch && ctx.pending_jcc > 0) {
    for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
      const RobEntry& o = ctx.rob[i];
      if (o.seq >= e.seq) break;
      if (o.inst.op == Opcode::Jcc && o.state != EntryState::Done)
        return false;
    }
  }

  // Fences (and RDTSCP's wait-for-older semantics) hold issue until all
  // older entries complete. `e` itself is non-Done, so more than one
  // non-Done entry means the scan could find an older one.
  if (in.is_fence() || in.op == Opcode::Rdtscp) {
    if (static_cast<int>(ctx.rob.size()) - ctx.done_count > 1) {
      for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
        const RobEntry& o = ctx.rob[i];
        if (o.seq >= e.seq) break;
        if (o.state != EntryState::Done) return false;
      }
    }
  }

  // Loads (and CLFLUSH) wait for older stores to drain, and loads also wait
  // for older CLFLUSHes — conservative memory disambiguation that gives
  // store→clflush→ret the paper's ordering (Listing 1).
  if (in.is_load()) {
    if (ctx.pending_stores > 0 || ctx.pending_clflush > 0) {
      for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
        const RobEntry& o = ctx.rob[i];
        if (o.seq >= e.seq) break;
        if (o.inst.is_store() && o.state != EntryState::Done) return false;
        if (o.inst.op == Opcode::Clflush && o.state != EntryState::Done)
          return false;
      }
    }
  } else if (in.op == Opcode::Clflush) {
    if (ctx.pending_stores > 0) {
      for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
        const RobEntry& o = ctx.rob[i];
        if (o.seq >= e.seq) break;
        if (o.inst.is_store() && o.state != EntryState::Done) return false;
      }
    }
  }

  // Operand readiness.
  if (!operand_ready(ctx, e.prod_a) || !operand_ready(ctx, e.prod_b))
    return false;
  if (e.inst.reads_flags() && !operand_ready(ctx, e.prod_flags)) return false;
  return true;
}

void Core::try_issue_entry(ThreadCtx& ctx, RobEntry& e, int& loads,
                           int& stores, int& branches, int& issued_uops) {
  const Instruction& in = e.inst;

  // Port capacity.
  if (in.is_load() && loads >= cfg_.load_ports) return;
  if (in.is_store() && stores >= cfg_.store_ports) return;
  if (in.is_branch() && branches >= cfg_.branch_ports) return;

  if (!issue_ready(ctx, e)) return;

  // Issue.
  ctx.rob.set_state(e, EntryState::Issued);
  trace(&ctx == &ctx_[0] ? 0 : 1, TraceEvent::Issue, &e);
  issued_uops += e.uops;
  if (in.is_load()) ++loads;
  if (in.is_store()) ++stores;
  if (in.is_branch()) ++branches;
  account_issue(ctx, e);
  execute_entry(ctx, e);
}

void Core::execute_entry(ThreadCtx& ctx, RobEntry& e) {
  const Instruction& in = e.inst;
  const DecodedInst& di = ctx.dec->insts[static_cast<std::size_t>(e.pc)];
  const std::uint64_t a = read_operand(ctx, di.src_a, e.prod_a);
  const std::uint64_t b = read_operand(ctx, di.src_b, e.prod_b);
  e.stale_tainted =
      operand_tainted(ctx, e.prod_a) || operand_tainted(ctx, e.prod_b) ||
      (in.reads_flags() && operand_tainted(ctx, e.prod_flags));

  int latency = 1;

  switch (in.op) {
    case Opcode::Nop:
      break;
    case Opcode::MovRI:
      e.result = static_cast<std::uint64_t>(in.imm);
      break;
    case Opcode::MovRR:
      e.result = a;
      break;
    case Opcode::AddRI: {
      const std::uint64_t imm = static_cast<std::uint64_t>(in.imm);
      e.result = a + imm;
      e.flags_out = alu_flags(e.result, e.result < a,
                              ((~(a ^ imm) & (a ^ e.result)) >> 63) != 0);
      break;
    }
    case Opcode::AddRR: {
      e.result = a + b;
      e.flags_out = alu_flags(e.result, e.result < a,
                              ((~(a ^ b) & (a ^ e.result)) >> 63) != 0);
      break;
    }
    case Opcode::SubRI:
    case Opcode::CmpRI: {
      const std::uint64_t imm = static_cast<std::uint64_t>(in.imm);
      const std::uint64_t r = a - imm;
      e.flags_out = alu_flags(r, a < imm,
                              (((a ^ imm) & (a ^ r)) >> 63) != 0);
      e.result = in.op == Opcode::SubRI ? r : a;
      break;
    }
    case Opcode::SubRR:
    case Opcode::CmpRR: {
      const std::uint64_t r = a - b;
      e.flags_out =
          alu_flags(r, a < b, (((a ^ b) & (a ^ r)) >> 63) != 0);
      e.result = in.op == Opcode::SubRR ? r : a;
      break;
    }
    case Opcode::AndRI:
      e.result = a & static_cast<std::uint64_t>(in.imm);
      e.flags_out = alu_flags(e.result, false, false);
      break;
    case Opcode::OrRI:
      e.result = a | static_cast<std::uint64_t>(in.imm);
      e.flags_out = alu_flags(e.result, false, false);
      break;
    case Opcode::XorRR:
      e.result = a ^ b;
      e.flags_out = alu_flags(e.result, false, false);
      break;
    case Opcode::ShlRI:
      e.result = a << (in.imm & 63);
      e.flags_out = alu_flags(e.result, false, false);
      break;
    case Opcode::ShrRI:
      e.result = a >> (in.imm & 63);
      e.flags_out = alu_flags(e.result, false, false);
      break;
    case Opcode::TestRR: {
      const std::uint64_t r = a & b;
      e.flags_out = alu_flags(r, false, false);
      e.result = a;
      break;
    }
    case Opcode::ImulRR:
      e.result = a * b;
      e.flags_out = alu_flags(e.result, false, false);
      latency = 3;
      break;
    case Opcode::FdivRR: {
      // The single divider iterates on the quotient for the full latency;
      // trivial divisors (0/1) early-exit. Occupancy is latched here — at
      // execution — so a transiently issued divide leaves it behind after
      // its squash, exactly like a transient load leaves a cache fill.
      e.result = b == 0 ? ~0ull : a / b;
      e.flags_out = alu_flags(e.result, false, false);
      latency = b <= 1 ? cfg_.div_fast_latency : cfg_.div_latency;
      divider_busy_until_ = cycle_ + static_cast<std::uint64_t>(latency);
      break;
    }
    case Opcode::Neg: {
      e.result = static_cast<std::uint64_t>(-static_cast<std::int64_t>(a));
      e.flags_out = alu_flags(e.result, a != 0, false);
      break;
    }
    case Opcode::Not:
      e.result = ~a;
      break;
    case Opcode::Lea:
      e.result = a + static_cast<std::uint64_t>(in.disp);
      break;
    case Opcode::Cmov: {
      // Branchless select: resolves in the data path, never touches the
      // BPU — the §6.2-style rewrite that silences the TET channel.
      const isa::Flags f = read_flags(ctx, e.prod_flags);
      e.result = isa::eval_cond(in.cond, f) ? b : a;
      latency = 2;
      break;
    }
    case Opcode::Pause:
      latency = 8;
      break;
    case Opcode::AvxOp: {
      // Power-up is a persistent side effect of *execution* — transient
      // AVX ops warm the unit even when later squashed (the AVX-timing
      // channel's transmitter).
      latency = 3;
      if (cfg_.avx_power_gating && cycle_ >= avx_warm_until_)
        latency += cfg_.avx_power_up_cycles;
      avx_warm_until_ =
          cycle_ + static_cast<std::uint64_t>(cfg_.avx_warm_cycles);
      break;
    }
    case Opcode::Load:
    case Opcode::LoadByte: {
      mem::AccessRequest req;
      req.vaddr = a + static_cast<std::uint64_t>(in.disp);
      req.type = mem::AccessType::Read;
      req.user_mode = ctx.user_mode;
      req.size = in.op == Opcode::LoadByte ? 1 : 8;
      const mem::AccessResult r = mem_.access(req);
      latency = std::max(1, r.latency);
      e.fault = r.fault;
      e.result = r.data;
      e.data_forwarded = r.data_forwarded;
      if (r.from_lfb_stale) e.stale_tainted = true;
      if (r.fault != mem::Fault::None) {
        // Dependents consume the (transiently forwarded) value early; the
        // fault is only confirmed when the walk/replay finishes.
        e.forward_at = r.data_forwarded
                           ? cycle_ + static_cast<std::uint64_t>(
                                          cfg_.forward_latency)
                           : cycle_ + static_cast<std::uint64_t>(latency);
      }
      break;
    }
    case Opcode::Store:
    case Opcode::StoreByte: {
      mem::AccessRequest req;
      req.vaddr = a + static_cast<std::uint64_t>(in.disp);
      req.type = mem::AccessType::Write;
      req.user_mode = ctx.user_mode;
      req.size = in.op == Opcode::StoreByte ? 1 : 8;
      req.store_value = b;
      const mem::AccessResult r = mem_.access(req);
      latency = std::max(1, r.latency);
      e.fault = r.fault;
      if (r.fault == mem::Fault::None) {
        e.store_applied = true;
        e.store_paddr = r.paddr;
        e.store_old = r.data;
        e.store_size = req.size;
      }
      break;
    }
    case Opcode::Clflush:
      mem_.clflush(a + static_cast<std::uint64_t>(in.disp));
      latency = 4;
      break;
    case Opcode::Prefetch: {
      mem::AccessRequest req;
      req.vaddr = a + static_cast<std::uint64_t>(in.disp);
      req.type = mem::AccessType::Prefetch;
      req.user_mode = ctx.user_mode;
      const mem::AccessResult r = mem_.access(req);
      // PREFETCH never faults architecturally, but its latency exposes the
      // walk time — the EntryBleed-style baseline measures exactly this.
      latency = std::max(1, r.latency);
      break;
    }
    case Opcode::Mfence:
      latency = 4;
      break;
    case Opcode::Lfence:
      latency = 2;
      break;
    case Opcode::Rdtsc:
    case Opcode::Rdtscp:
      e.result = cycle_;
      latency = 12;
      break;
    case Opcode::TsxBegin:
    case Opcode::TsxEnd:
      latency = 2;
      break;
    case Opcode::Jmp:
      break;
    case Opcode::Jcc: {
      const isa::Flags f = read_flags(ctx, e.prod_flags);
      const bool taken = isa::eval_cond(in.cond, f);
      resolve_branch(ctx, e, taken, in.target);
      break;
    }
    case Opcode::Call: {
      // Push the return address; the branch itself was handled at fetch.
      mem::AccessRequest req;
      req.vaddr = a - 8;  // a = RSP
      req.type = mem::AccessType::Write;
      req.user_mode = ctx.user_mode;
      req.size = 8;
      req.store_value = static_cast<std::uint64_t>(e.pc + 1);
      const mem::AccessResult r = mem_.access(req);
      latency = std::max(1, r.latency);
      e.fault = r.fault;
      if (r.fault == mem::Fault::None) {
        e.store_applied = true;
        e.store_paddr = r.paddr;
        e.store_old = r.data;
        e.store_size = 8;
      }
      e.result = a - 8;  // new RSP
      break;
    }
    case Opcode::Ret: {
      mem::AccessRequest req;
      req.vaddr = a;  // a = RSP
      req.type = mem::AccessType::Read;
      req.user_mode = ctx.user_mode;
      req.size = 8;
      const mem::AccessResult r = mem_.access(req);
      latency = std::max(1, r.latency);
      e.fault = r.fault;
      e.result = a + 8;        // new RSP
      e.flags_out = ctx.flags;  // unused
      // Loaded return target stashed for resolution at completion.
      e.predicted_target = e.predicted_target;  // set at fetch
      e.store_old = r.data;  // reuse field: actual return target
      break;
    }
    case Opcode::Halt:
      break;
  }

  ctx.rob.set_complete(e, cycle_ + static_cast<std::uint64_t>(latency));
  if (e.forward_at == 0) e.forward_at = e.complete_at;

  // A deferred fault opens a transient window: younger instructions now
  // execute on borrowed time until the fault retires (machine clear) or the
  // opener itself is squashed from a wrong path.
  if (e.fault != mem::Fault::None) {
    ++ctx.pending_faults;
    if (ctx.window_open_seq == 0) {
      ctx.window_open_seq = e.seq;
      trace(&ctx == &ctx_[0] ? 0 : 1, TraceEvent::WindowOpen, &e);
    }
  }
}

void Core::resolve_branch(ThreadCtx& ctx, RobEntry& e, bool actual_taken,
                          std::int32_t actual_target) {
  bpu_.update_cond(e.pc, actual_taken);
  if (actual_taken) bpu_.btb_record(e.pc, actual_target);

  const bool mispredicted = actual_taken != e.predicted_taken;
  if (!mispredicted) {
    if (cfg_.vendor == Vendor::Amd) pmu_.inc(PmuEvent::BP_L1_BTB_CORRECT);
    return;
  }

  pmu_.inc(PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
  trace(&ctx == &ctx_[0] ? 0 : 1, TraceEvent::Mispredict, &e);
  const bool transient = older_window_exists(ctx, e.seq);
  int window_drain = 0;
  if (transient) {
    ctx.window_mispredict = true;
    handle_transient_shortcuts(ctx, e);
  } else {
    pmu_.inc(PmuEvent::BR_MISP_RETIRED_ALL_BRANCHES);
    if (ctx.window_mispredict) {
      // This architectural misprediction ends a speculation window that
      // contained a transient resteer (Spectre-V1 shape): the inner
      // recovery work drains into this resteer, lengthening ToTE exactly
      // as the machine clear does for exception windows.
      window_drain = cfg_.transient_resteer_clear_penalty;
      if (ctx.frontend_ready_at > cycle_)
        window_drain += static_cast<int>(ctx.frontend_ready_at - cycle_);
      ctx.window_mispredict = false;
    }
  }

  // Resteer: squash the wrong path and refetch — this happens even inside a
  // transient window, which is the root cause of the Whisper channel (§5.2.2).
  squash_younger(ctx, e.seq);
  redirect_fetch(ctx, actual_taken ? actual_target : e.pc + 1);
  ctx.frontend_ready_at = std::max(
      ctx.frontend_ready_at,
      cycle_ + static_cast<std::uint64_t>(cfg_.resteer_cycles +
                                          window_drain));
  // RAT recovery keeps allocation stalled for a few cycles after the
  // refetched uops arrive (counted as resource stalls while the IDQ holds
  // work).
  ctx.alloc_stall_until = std::max(
      ctx.alloc_stall_until,
      ctx.frontend_ready_at + static_cast<std::uint64_t>(
                                  cfg_.mite_decode_latency +
                                  cfg_.recovery_extra_cycles));
  pmu_.inc(PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES,
           static_cast<std::uint64_t>(cfg_.resteer_cycles));
  pmu_.inc(PmuEvent::INT_MISC_RECOVERY_CYCLES,
           static_cast<std::uint64_t>(cfg_.recovery_extra_cycles));
  pmu_.inc(PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY,
           static_cast<std::uint64_t>(cfg_.recovery_extra_cycles));
  // The RAT-token shortage during recovery counts as a resource stall even
  // when a machine clear preempts the refill (Table 3: RESOURCE_STALLS.ANY
  // rises on every triggered scene).
  pmu_.inc(PmuEvent::RESOURCE_STALLS_ANY,
           static_cast<std::uint64_t>(cfg_.recovery_extra_cycles / 2));
}

void Core::handle_transient_shortcuts(ThreadCtx& ctx,
                                      const RobEntry& branch) {
  if (!cfg_.early_clear_on_transient_mispredict) return;

  // MDS/assist window: a mispredict whose dataflow touched stale LFB data
  // initiates the squash early — the faulting load stops replaying its walk
  // and the fault is confirmed immediately (TET-ZBL: trigger => shorter).
  if (branch.stale_tainted) {
    for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
      RobEntry& o = ctx.rob[i];
      if (o.seq >= branch.seq) break;
      if (o.fault == mem::Fault::NotPresent && o.data_forwarded &&
          o.state == EntryState::Issued && o.complete_at > cycle_ + 1) {
        ctx.rob.set_complete(o, cycle_ + 1);
        o.forward_at = std::min(o.forward_at, o.complete_at);
        o.early_cleared = true;
        break;
      }
    }
  }

  // RSB window: the squash propagates to the pending return, which resolves
  // early instead of waiting for its (slow) target load
  // (TET-RSB: trigger => shorter, §4.3.3).
  for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
    RobEntry& o = ctx.rob[i];
    if (o.seq >= branch.seq) break;
    if (o.inst.op == Opcode::Ret && o.state == EntryState::Issued &&
        o.complete_at > cycle_ + static_cast<std::uint64_t>(
                                     cfg_.early_ret_resolve_cycles)) {
      ctx.rob.set_complete(
          o, cycle_ + static_cast<std::uint64_t>(cfg_.early_ret_resolve_cycles));
      o.forward_at = std::min(o.forward_at, o.complete_at);
      o.early_cleared = true;
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void Core::step_complete() {
  for (int t = 0; t < nthreads_; ++t) {
    ThreadCtx& ctx = ctx_[t];
    if (!ctx.active || ctx.halted) continue;
    for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
      if (ctx.rob.state_at(i) != EntryState::Issued ||
          cycle_ < ctx.rob.complete_at(i))
        continue;
      RobEntry& e = ctx.rob[i];
      ctx.rob.set_state(e, EntryState::Done);
      account_done(ctx, e);
      trace(t, TraceEvent::Complete, &e);
      if (e.inst.op == Opcode::Ret && e.fault == mem::Fault::None) {
        // The loaded return target is now known: check the RSB prediction.
        const auto actual =
            static_cast<std::int32_t>(e.store_old);  // stashed target
        if (e.predicted_target == actual) {
          if (cfg_.vendor == Vendor::Amd)
            pmu_.inc(PmuEvent::BP_L1_BTB_CORRECT);
        } else if (e.predicted_target < 0) {
          // No prediction was made; simply steer the stalled front end.
          squash_younger(ctx, e.seq);
          redirect_fetch(ctx, actual);
          ctx.frontend_ready_at = std::max(ctx.frontend_ready_at, cycle_ + 2);
        } else {
          // Spectre-RSB misprediction resolved: squash the transient return
          // path and resteer (no machine clear — hence TET-RSB's speed).
          pmu_.inc(PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
          pmu_.inc(PmuEvent::BR_MISP_EXEC_INDIRECT);
          squash_younger(ctx, e.seq);
          redirect_fetch(ctx, actual);
          ctx.frontend_ready_at = std::max(
              ctx.frontend_ready_at,
              cycle_ + static_cast<std::uint64_t>(cfg_.resteer_cycles));
          ctx.alloc_stall_until = std::max(
              ctx.alloc_stall_until,
              cycle_ + static_cast<std::uint64_t>(
                           cfg_.resteer_cycles + cfg_.recovery_extra_cycles));
          pmu_.inc(PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES,
                   static_cast<std::uint64_t>(cfg_.resteer_cycles));
          pmu_.inc(PmuEvent::INT_MISC_RECOVERY_CYCLES,
                   static_cast<std::uint64_t>(cfg_.recovery_extra_cycles));
          pmu_.inc(PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY,
                   static_cast<std::uint64_t>(cfg_.recovery_extra_cycles));
          // The transient window ended by resteer; any inner transient
          // mispredict was consumed by the early resolution.
          ctx.window_mispredict = false;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Retirement
// ---------------------------------------------------------------------------

void Core::step_retire(int t) {
  ThreadCtx& ctx = ctx_[t];
  int budget = cfg_.retire_width;
  while (budget > 0 && !ctx.rob.empty()) {
    RobEntry& head = ctx.rob.front();
    if (head.state != EntryState::Done) break;

    if (head.fault != mem::Fault::None) {
      machine_clear(t, head);
      return;
    }

    // Architectural commit.
    if (head.writes_reg)
      ctx.regs[static_cast<std::size_t>(head.dst)] = head.result;
    if (head.writes_flags) ctx.flags = head.flags_out;

    switch (head.inst.op) {
      case Opcode::Rdtsc:
      case Opcode::Rdtscp:
        ctx.tsc_out.push_back(head.result);
        break;
      case Opcode::TsxBegin:
        ctx.in_tsx = true;
        ctx.tsx_abort_target = head.inst.target;
        break;
      case Opcode::TsxEnd:
        ctx.in_tsx = false;
        break;
      case Opcode::Halt:
        ctx.halted = true;
        break;
      default:
        break;
    }
    pmu_.inc(PmuEvent::UOPS_RETIRED_ALL,
             static_cast<std::uint64_t>(head.uops));
    trace(t, TraceEvent::Retire, &head);
    ++ctx.retired;
    --budget;
    // Release the rename map if this entry is still its registers' youngest
    // writer (otherwise a younger in-flight writer owns the slot).
    if (head.writes_reg &&
        ctx.reg_writer[static_cast<std::size_t>(head.dst)] == head.seq)
      ctx.reg_writer[static_cast<std::size_t>(head.dst)] = 0;
    if (head.writes_flags && ctx.flags_writer == head.seq)
      ctx.flags_writer = 0;
    account_remove(ctx, head);
    ctx.rob.pop_front();
    if (ctx.halted) return;
  }
}

void Core::machine_clear(int t, RobEntry& faulting) {
  ThreadCtx& ctx = ctx_[t];
  pmu_.inc(PmuEvent::MACHINE_CLEARS_COUNT);
  trace(t, TraceEvent::MachineClear, &faulting);

  // Where does control go, and what does suppression cost?
  std::int32_t target = -1;
  int base_cost = 0;
  if (ctx.in_tsx) {
    target = ctx.tsx_abort_target;
    base_cost = cfg_.tsx_abort_cycles;
    ctx.in_tsx = false;
    trace(t, TraceEvent::TsxAbort, &faulting);
  } else if (ctx.signal_handler >= 0) {
    target = ctx.signal_handler;
    base_cost = cfg_.signal_dispatch_cycles;
    trace(t, TraceEvent::SignalRedirect, &faulting);
  }

  // The Whisper delta for exception-terminated windows: a transient resteer
  // inside the window leaves recovery work that the clear must drain
  // (trigger => longer ToTE). Early-cleared assist windows already squashed.
  int extra = 0;
  if (ctx.window_mispredict && !faulting.early_cleared) {
    extra = cfg_.transient_resteer_clear_penalty;
    if (ctx.frontend_ready_at > cycle_)
      extra += static_cast<int>(ctx.frontend_ready_at - cycle_);
    // The recovery machinery retro-counts the transient misprediction —
    // reproducing the 0→1 / 0→2 counter jumps of Table 3.
    pmu_.inc(PmuEvent::BR_MISP_EXEC_INDIRECT);
    pmu_.inc(PmuEvent::BR_MISP_EXEC_ALL_BRANCHES);
  }
  ctx.window_mispredict = false;

  // The clear drains the window the deferred fault opened.
  if (ctx.window_open_seq != 0) {
    trace(t, TraceEvent::WindowClose, &faulting);
    ctx.window_open_seq = 0;
  }

  const mem::Fault fault_kind = faulting.fault;
  squash_all(ctx);
  ctx.idq.clear();
  // The pipeline flush drains the execution units with everything else: an
  // in-flight divide is abandoned, so its occupancy does not survive into
  // the post-clear resume (unlike a resteer squash, which leaves it).
  divider_busy_until_ = 0;

  // "flushclear" defense (defense::registry()): the clear also scrubs the
  // microarchitectural residue the transient window deposited — caches per
  // the configured level count, and the line-fill buffer always (its stale
  // slots are the MDS substrate). Clears only fire on the structural path
  // (a Done ROB head forces try_fast_forward to bail), so fast-forward
  // identity is untouched.
  if (cfg_.flush_on_clear) {
    mem_.l1().flush_all();
    if (cfg_.flush_on_clear_levels >= 2) mem_.l2().flush_all();
    if (cfg_.flush_on_clear_levels >= 3) mem_.l3().flush_all();
    mem_.lfb().clear();
  }

  const std::uint64_t stall = static_cast<std::uint64_t>(
      cfg_.machine_clear_cycles + base_cost + extra);
  ctx.frontend_ready_at = cycle_ + stall;
  ctx.alloc_stall_until = cycle_ + stall;
  if (nthreads_ > 1) {
    // A machine clear monopolises the shared front end — the §4.4 SMT
    // covert channel's transmission mechanism.
    shared_frontend_busy_until_ =
        std::max(shared_frontend_busy_until_,
                 cycle_ + static_cast<std::uint64_t>(
                              cfg_.machine_clear_cycles + base_cost / 2));
  }

  pmu_.inc(PmuEvent::INT_MISC_CLEAR_RESTEER_CYCLES,
           static_cast<std::uint64_t>(cfg_.resteer_cycles));
  const auto recovery = static_cast<std::uint64_t>(
      cfg_.machine_clear_cycles * 2 / 3 + extra / 2);
  pmu_.inc(PmuEvent::INT_MISC_RECOVERY_CYCLES, recovery);
  pmu_.inc(PmuEvent::INT_MISC_RECOVERY_CYCLES_ANY, recovery);

  if (target < 0) {
    ctx.killed = true;
    ctx.halted = true;
    return;
  }

  // In a long (unmapped-address) window the speculative front end runs far
  // ahead into cold code; with the TLBs freshly evicted this shows up as
  // ITLB walk activity — the ITLB_MISSES.WALK_ACTIVE row of Table 3.
  if (fault_kind == mem::Fault::NotPresent)
    mem_.instruction_probe(ctx.code_base +
                           static_cast<std::uint64_t>(target) * 16);

  redirect_fetch(ctx, target);
}

void Core::inject_interrupt(std::uint64_t handler_cycles) {
  for (int t = 0; t < nthreads_; ++t) {
    ThreadCtx& ctx = ctx_[t];
    if (!ctx.active || ctx.halted) continue;

    // Resume at the next unretired instruction. Safe because architectural
    // state only changes at retirement: re-fetching the squashed suffix
    // replays it from scratch. Inside a TSX region an interrupt aborts the
    // transaction, so control resumes at the abort target instead.
    std::int32_t resume = ctx.rob.empty() ? ctx.fetch_pc : ctx.rob.front().pc;
    if (ctx.in_tsx) {
      resume = ctx.tsx_abort_target;
      ctx.in_tsx = false;
      trace_raw(t, TraceEvent::TsxAbort, resume, isa::Opcode::Nop, 0);
    }
    ctx.window_mispredict = false;

    pmu_.inc(PmuEvent::MACHINE_CLEARS_COUNT);
    trace_raw(t, TraceEvent::MachineClear, resume, isa::Opcode::Nop, 0);
    squash_all(ctx);
    ctx.idq.clear();
    divider_busy_until_ = 0;  // the flush drains the divider too

    const std::uint64_t stall =
        cycle_ + handler_cycles +
        static_cast<std::uint64_t>(cfg_.machine_clear_cycles);
    ctx.frontend_ready_at = std::max(ctx.frontend_ready_at, stall);
    ctx.alloc_stall_until = std::max(ctx.alloc_stall_until, stall);
    redirect_fetch(ctx, resume);
  }
  if (nthreads_ > 1)
    shared_frontend_busy_until_ =
        std::max(shared_frontend_busy_until_,
                 cycle_ + static_cast<std::uint64_t>(cfg_.machine_clear_cycles));
}

// ---------------------------------------------------------------------------
// Squash / redirect helpers
// ---------------------------------------------------------------------------

void Core::undo_store(const RobEntry& e) {
  if (!e.store_applied) return;
  if (e.store_size == 1)
    mem_.phys().write8(e.store_paddr,
                       static_cast<std::uint8_t>(e.store_old));
  else
    mem_.phys().write64(e.store_paddr, e.store_old);
}

void Core::squash_younger(ThreadCtx& ctx, std::uint64_t seq) {
  const int t = &ctx == &ctx_[0] ? 0 : 1;
  std::uint64_t dropped = 0;
  while (!ctx.rob.empty() && ctx.rob.back().seq > seq) {
    RobEntry& victim = ctx.rob.back();
    trace(t, TraceEvent::Squash, &victim);
    undo_store(victim);
    unrename(ctx, victim);
    account_remove(ctx, victim);
    ctx.rob.pop_back();
    ++dropped;
  }
  ctx.idq.clear();
  if (ctx.window_open_seq > seq) {
    // The window opener itself was on the wrong path: the window ends
    // without a machine clear.
    trace_raw(t, TraceEvent::WindowClose, -1, isa::Opcode::Nop,
              ctx.window_open_seq);
    ctx.window_open_seq = 0;
  }
  if (dropped)
    trace(t, TraceEvent::SquashYounger, nullptr, dropped);
}

void Core::squash_all(ThreadCtx& ctx) {
  const int t = &ctx == &ctx_[0] ? 0 : 1;
  while (!ctx.rob.empty()) {
    RobEntry& victim = ctx.rob.back();
    trace(t, TraceEvent::Squash, &victim);
    undo_store(victim);
    unrename(ctx, victim);
    account_remove(ctx, victim);
    ctx.rob.pop_back();
  }
  ctx.window_open_seq = 0;
}

void Core::redirect_fetch(ThreadCtx& ctx, std::int32_t target) {
  trace(&ctx == &ctx_[0] ? 0 : 1, TraceEvent::Resteer, nullptr,
        static_cast<std::uint64_t>(target));
  ctx.fetch_pc = target;
  ctx.fetch_halted = false;
  ctx.force_mite = 2;  // pipeline restart goes through the legacy decoder
  const std::int32_t block = target / kInstrBlock;
  if (!ctx.dsb_blocks.contains(block)) ctx.pending_mite_bubble = true;
}

// ---------------------------------------------------------------------------
// Per-cycle PMU accounting
// ---------------------------------------------------------------------------

void Core::per_cycle_pmu() {
  pmu_.inc(PmuEvent::CORE_CYCLES);

  if (issued_uops_this_cycle_ == 0) {
    pmu_.inc(PmuEvent::UOPS_EXECUTED_STALL_CYCLES);
    pmu_.inc(PmuEvent::UOPS_EXECUTED_CORE_CYCLES_NONE);
    pmu_.inc(PmuEvent::CYCLE_ACTIVITY_STALLS_TOTAL);
  }
  if (alloc_uops_this_cycle_ == 0)
    pmu_.inc(PmuEvent::UOPS_ISSUED_STALL_CYCLES);

  bool mem_in_flight = false;
  bool rs_nonempty = false;
  // After step_complete, every Issued entry on a live thread has
  // complete_at > cycle_ (all execute latencies and shortcut targets land
  // at least one cycle out), so the issued_loads census answers
  // CYCLE_ACTIVITY_CYCLES_MEM_ANY without a ROB scan. Two cases still need
  // the exact timestamp scan: a halted thread's frozen in-flight loads
  // (completion no longer runs for it, so they age out of the event as
  // their timestamps pass), and a degenerate early_ret_resolve_cycles < 1
  // (a shortcut could then zero a load's remaining latency mid-cycle).
  const bool shortcut_can_zero = cfg_.early_clear_on_transient_mispredict &&
                                 cfg_.early_ret_resolve_cycles < 1;
  for (int t = 0; t < nthreads_; ++t) {
    const ThreadCtx& ctx = ctx_[t];
    if (!ctx.active) continue;
    if (ctx.waiting_count > 0) rs_nonempty = true;
    if (ctx.issued_loads > 0 && !mem_in_flight) {
      if (!ctx.halted && !shortcut_can_zero) {
        mem_in_flight = true;
      } else {
        for (std::size_t i = 0; i < ctx.rob.size(); ++i) {
          if (ctx.rob.state_at(i) == EntryState::Issued &&
              ctx.rob.complete_at(i) > cycle_ &&
              ctx.rob[i].inst.is_load()) {
            mem_in_flight = true;
            break;
          }
        }
      }
    }
  }
  if (mem_in_flight) pmu_.inc(PmuEvent::CYCLE_ACTIVITY_CYCLES_MEM_ANY);
  if (!rs_nonempty) pmu_.inc(PmuEvent::RS_EVENTS_EMPTY_CYCLES);

  if (cfg_.vendor == Vendor::Amd && ctx_[0].active && ctx_[0].idq.empty())
    pmu_.inc(PmuEvent::DE_DIS_UOP_QUEUE_EMPTY_DI0);
}

}  // namespace whisper::uarch
