#include "uarch/config.h"

namespace whisper::uarch {

namespace {

CpuConfig intel_base() {
  CpuConfig c;
  c.vendor = Vendor::Intel;
  return c;
}

}  // namespace

CpuConfig make_config(CpuModel model) {
  switch (model) {
    case CpuModel::SkylakeI7_6700: {
      CpuConfig c = intel_base();
      c.model = model;
      c.name = "Intel Core i7-6700";
      c.uarch_name = "Skylake";
      c.microcode = "0xf0";
      c.kernel = "4.15.0-213";
      c.ghz = 3.4;
      c.rob_size = 224;
      c.rs_size = 97;
      // Pre-fix part: Meltdown and MDS forwarding both live.
      c.mem.meltdown_forwards_data = true;
      c.mem.lfb_forwards_stale = true;
      c.mem.tlb_fill_on_permission_fault = true;
      c.mem.not_present_replays = 2;
      c.seed = 0x6700;
      return c;
    }
    case CpuModel::KabyLakeI7_7700: {
      CpuConfig c = intel_base();
      c.model = model;
      c.name = "Intel Core i7-7700";
      c.uarch_name = "Kaby Lake";
      c.microcode = "0x5e";
      c.kernel = "5.4.0-150";
      c.ghz = 3.6;
      c.mem.meltdown_forwards_data = true;
      c.mem.lfb_forwards_stale = true;
      c.mem.tlb_fill_on_permission_fault = true;
      c.mem.not_present_replays = 2;
      c.seed = 0x7700;
      return c;
    }
    case CpuModel::CometLakeI9_10980XE: {
      CpuConfig c = intel_base();
      c.model = model;
      c.name = "Intel Core i9-10980XE";
      c.uarch_name = "Comet Lake";
      c.microcode = "0x5003303";
      c.kernel = "5.15.0-72";
      c.ghz = 3.0;
      c.rob_size = 224;
      // Silicon + microcode fixes: the data path no longer forwards across a
      // permission fault, and the LFB never forwards stale data. The TLB
      // fill-on-fault behaviour is unchanged — hence TET-KASLR still works.
      c.mem.meltdown_forwards_data = false;
      c.mem.lfb_forwards_stale = false;
      c.mem.tlb_fill_on_permission_fault = true;
      c.mem.not_present_replays = 2;
      c.seed = 0x1098;
      return c;
    }
    case CpuModel::RaptorLakeI9_13900K: {
      CpuConfig c = intel_base();
      c.model = model;
      c.name = "Intel Core i9-13900K";
      c.uarch_name = "Raptor Lake";
      c.microcode = "0x119";
      c.kernel = "5.15.0-86";
      c.ghz = 3.0;
      c.rob_size = 512;
      c.rs_size = 200;
      c.alloc_width = 6;
      c.retire_width = 8;
      c.fetch_width_dsb = 8;
      c.mem.meltdown_forwards_data = false;
      c.mem.lfb_forwards_stale = false;
      c.mem.tlb_fill_on_permission_fault = true;
      c.mem.not_present_replays = 2;
      // Still speculates returns through the RSB: TET-RSB ✓ in Table 2.
      c.rsb_speculates = true;
      c.has_tsx = false;  // TSX fused off on Raptor Lake
      c.seed = 0x13900;
      return c;
    }
    case CpuModel::Zen3Ryzen5_5600G: {
      CpuConfig c;
      c.model = model;
      c.vendor = Vendor::Amd;
      c.name = "AMD Ryzen 5 5600G";
      c.uarch_name = "Zen 3";
      c.microcode = "0xA50000D";
      c.kernel = "5.15.0-76";
      c.ghz = 3.9;
      c.rob_size = 256;
      c.rs_size = 96;
      c.mem.meltdown_forwards_data = false;
      c.mem.lfb_forwards_stale = false;
      // AMD installs TLB entries only after the permission check passes, and
      // does not replay the walk for non-present pages — the mapped/unmapped
      // timing signal vanishes, so TET-KASLR fails (Table 2 ✗).
      c.mem.tlb_fill_on_permission_fault = false;
      c.mem.not_present_replays = 1;
      c.has_tsx = false;  // no TSX on AMD
      c.seed = 0x5600;
      return c;
    }
  }
  return intel_base();
}

std::vector<CpuModel> all_models() {
  return {CpuModel::SkylakeI7_6700, CpuModel::KabyLakeI7_7700,
          CpuModel::CometLakeI9_10980XE, CpuModel::RaptorLakeI9_13900K,
          CpuModel::Zen3Ryzen5_5600G};
}

std::string to_string(CpuModel model) {
  return make_config(model).name;
}

}  // namespace whisper::uarch
