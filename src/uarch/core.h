// The out-of-order core model.
//
// A structural pipeline — fetch/decode (DSB vs MITE), allocate, issue to
// ports, execute, in-order retire — sized and parameterised by CpuConfig.
// It models exactly the mechanisms the paper's root-cause analysis
// identifies (§5):
//
//  * Faulting loads defer the fault to retirement; younger instructions
//    execute transiently on (possibly forwarded) data.
//  * A transient conditional branch still resolves in the back end; on
//    misprediction it resteers the front end (CLEAR_RESTEER cycles, MITE
//    refetch) and leaves recovery work that the terminal machine clear must
//    drain — the Whisper ToTE delta for exception windows (trigger=longer).
//  * For assist-terminated windows (MDS) and RSB windows, a dependent
//    transient mispredict initiates the squash early (trigger=shorter).
//  * Machine clears redirect to a TSX abort target or a signal handler,
//    with very different costs — which is why TET-RSB reaches KB/s while
//    TET-MD stays at tens of B/s (§4.1).
//  * Two SMT contexts share the front end; a machine clear on one stalls
//    the other — the §4.4 covert channel.
//
// Architectural state is only changed at retirement (stores are applied
// eagerly but logged and undone on squash), so transient execution is
// invisible at the ISA level — as required for a transient-attack study.
//
// Fast-forward (docs/PERFORMANCE.md): most simulated cycles are structurally
// inert — every in-flight load is still counting down its latency, nothing
// can issue, allocate, fetch or retire. When the core can prove the next
// cycle is inert it computes the exact horizon at which anything changes and
// advances cycle/PMU state in closed form instead of stepping the pipeline.
// The skip is exact by construction: a cycle is only skipped when the
// structural loop would have made no state transition, so fast-forward
// on/off is byte-identical in results, PMU deltas and traces (invariant 10,
// docs/ARCHITECTURE.md).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"
#include "mem/memory_system.h"
#include "stats/rng.h"
#include "uarch/branch_predictor.h"
#include "uarch/ring.h"
#include "uarch/trace.h"
#include "uarch/config.h"
#include "uarch/pmu.h"

namespace whisper::uarch {

/// Interference hook driven once per simulated cycle while the core is
/// running (whisper::noise::NoiseEngine implements it). The return value is
/// an interrupt-handler cost in cycles: non-zero means "an asynchronous
/// interrupt arrives now" — the core squashes all in-flight work on every
/// active thread, resteers to the next unretired instruction, and stalls
/// the front end for the returned cost on top of the machine-clear penalty.
/// Implementations use the hook's cycle argument for their own scheduling
/// (DVFS steps, TLB shootdowns) and must be deterministic in (seed, cycle).
/// The hook is called for every simulated cycle even while the core is
/// fast-forwarding an inert span, so noise schedules are mode-independent.
class CoreInterference {
 public:
  virtual ~CoreInterference() = default;
  [[nodiscard]] virtual std::uint64_t on_cycle(std::uint64_t cycle) = 0;
};

/// Initial architectural state for one hardware thread.
struct InitState {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  isa::Flags flags{};
  /// Instruction index to redirect to when a fault retires outside a TSX
  /// region (the signal-handler suppression of the paper's
  /// `transient_begin`); -1 kills the thread.
  int signal_handler = -1;
  bool user_mode = true;
  /// Virtual base address of the code, for i-side TLB modelling.
  std::uint64_t code_base = 0x0000000000400000ull;
};

struct ThreadResult {
  bool halted = false;
  bool killed_by_fault = false;
  std::uint64_t instructions_retired = 0;
  /// Values of retired RDTSC instructions, in program order.
  std::vector<std::uint64_t> tsc;
  std::array<std::uint64_t, isa::kNumRegs> regs{};
};

struct RunResult {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  bool cycle_limit_hit = false;
  std::array<ThreadResult, 2> thread;

  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return end_cycle - start_cycle;
  }
  [[nodiscard]] const ThreadResult& t0() const noexcept { return thread[0]; }
};

class Core {
 public:
  Core(const CpuConfig& cfg, mem::MemorySystem& mem);

  /// Run a single program on hardware thread 0 until Halt, kill, or limit.
  RunResult run(const isa::Program& prog, const InitState& init,
                std::uint64_t cycle_limit = 1'000'000);

  /// Run two programs on the SMT sibling threads (§4.4 covert channel).
  RunResult run_smt(const isa::Program& p0, const InitState& i0,
                    const isa::Program& p1, const InitState& i1,
                    std::uint64_t cycle_limit = 10'000'000);

  [[nodiscard]] Pmu& pmu() noexcept { return pmu_; }
  [[nodiscard]] const Pmu& pmu() const noexcept { return pmu_; }
  [[nodiscard]] BranchPredictor& bpu() noexcept { return bpu_; }
  [[nodiscard]] const CpuConfig& config() const noexcept { return cfg_; }
  /// Free-running cycle counter (persists across run() calls, like TSC).
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

  /// Forget predictor state (models a context switch / fresh victim).
  void reset_bpu() { bpu_.reset(); }

  /// Return the core to its post-construction state — cycle counter, PMU,
  /// BPU, DSB, SMT contexts and scratch all cleared, the jitter RNG
  /// re-derived exactly as construction with cfg.seed = seed would. The
  /// attached trace/interference hooks, the fast-forward knob and the
  /// decode cache are left untouched (the first two belong to os::Machine
  /// and the runner; the decode cache is a pure function of program content,
  /// so a warm one is indistinguishable from a cold one).
  void reset(std::uint64_t seed);

  /// Attach (or detach with nullptr) a pipeline trace sink. Any TraceSink
  /// works: the bounded uarch::PipelineTrace ring for tests, or the
  /// unbounded obs::EventLog feeding the Chrome-trace exporter. With no
  /// sink attached every hook is a branch on a null pointer.
  void set_trace(TraceSink* trace) noexcept { trace_ = trace; }

  /// Attach (or detach with nullptr) an interference source. Same contract
  /// as set_trace: with none attached the per-cycle hook is a branch on a
  /// null pointer and the run is cycle-identical to an unhooked core.
  void set_interference(CoreInterference* noise) noexcept { noise_ = noise; }

  /// Enable/disable the fast-forward execution mode (default on). Off means
  /// every cycle steps the full structural pipeline; on is byte-identical
  /// but skips provably inert spans in closed form. Sticky across reset().
  void set_fast_forward(bool on) noexcept { fast_forward_ = on; }
  [[nodiscard]] bool fast_forward() const noexcept { return fast_forward_; }

  /// Decode-cache hit accounting (docs/PERFORMANCE.md). Monotonic for the
  /// lifetime of the Core — reset() does not clear it, because the cache
  /// itself survives reset.
  struct DecodeCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] const DecodeCacheStats& decode_cache_stats() const noexcept {
    return decode_stats_;
  }

  /// Advance the free-running cycle counter without executing anything —
  /// used by the OS layer to charge attacker-side overheads (TLB eviction
  /// buffers, process synchronisation) to simulated time.
  void advance(std::uint64_t cycles) noexcept { cycle_ += cycles; }

 private:
  enum class EntryState : std::uint8_t { Waiting, Issued, Done };

  struct RobEntry {
    std::uint64_t seq = 0;
    std::int32_t pc = 0;
    isa::Instruction inst;
    EntryState state = EntryState::Waiting;
    int uops = 1;

    // Dataflow: seq of the youngest older producer of each operand.
    // 0 = read architectural state. A producer seq may also reference an
    // already-retired entry (the rename map is not scrubbed on retire);
    // both cases read the architectural value, so they are equivalent.
    std::uint64_t prod_a = 0;   // first source register
    std::uint64_t prod_b = 0;   // second source register
    std::uint64_t prod_flags = 0;

    // Results.
    std::uint64_t result = 0;
    isa::Flags flags_out{};
    isa::Reg dst = isa::Reg::None;  // architectural destination (decode)
    bool writes_reg = false;
    bool writes_flags = false;

    // Rename-map checkpoints: the map values this entry displaced at
    // allocation, restored when the entry is squashed (youngest-first).
    std::uint64_t prev_reg_writer = 0;
    std::uint64_t prev_flags_writer = 0;

    // Timing.
    std::uint64_t complete_at = 0;   // when the entry becomes Done
    std::uint64_t forward_at = 0;    // when dependents may consume `result`

    // Memory / fault.
    mem::Fault fault = mem::Fault::None;
    bool data_forwarded = false;
    bool stale_tainted = false;   // dataflow touched stale LFB data (MDS)
    bool early_cleared = false;   // assist squashed early by transient misp.
    bool store_applied = false;
    std::uint64_t store_paddr = 0;
    std::uint64_t store_old = 0;
    std::uint8_t store_size = 8;

    // Branch bookkeeping.
    bool predicted_taken = false;
    std::int32_t predicted_target = -1;
    bool pred_from_rsb = false;
  };

  /// The reorder buffer: a contiguous power-of-two ring of RobEntry with
  /// structure-of-arrays mirrors of the fields the per-cycle scans touch
  /// (state, complete_at, seq). The mirrors are kept in lockstep at the two
  /// choke points that mutate them (set_state / set_complete) so hot sweeps
  /// — completion wake-up, the fast-forward inertness check — stream three
  /// flat arrays instead of striding ~160-byte entries. seq values ascend
  /// in ring order but are NOT contiguous (squashes leave gaps), so seq
  /// lookup is a binary search, not offset arithmetic.
  class RobRing {
   public:
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] RobEntry& operator[](std::size_t i) noexcept {
      return buf_[phys(i)];
    }
    [[nodiscard]] const RobEntry& operator[](std::size_t i) const noexcept {
      return buf_[phys(i)];
    }
    [[nodiscard]] RobEntry& front() noexcept { return buf_[phys(0)]; }
    [[nodiscard]] const RobEntry& front() const noexcept {
      return buf_[phys(0)];
    }
    [[nodiscard]] RobEntry& back() noexcept { return buf_[phys(size_ - 1)]; }
    [[nodiscard]] const RobEntry& back() const noexcept {
      return buf_[phys(size_ - 1)];
    }

    [[nodiscard]] EntryState state_at(std::size_t i) const noexcept {
      return state_[phys(i)];
    }
    [[nodiscard]] std::uint64_t complete_at(std::size_t i) const noexcept {
      return complete_[phys(i)];
    }

    void push_back(RobEntry e);
    void pop_front() noexcept {
      head_ = (head_ + 1) & mask_;
      --size_;
    }
    void pop_back() noexcept { --size_; }
    void clear() noexcept {
      head_ = 0;
      size_ = 0;
    }

    void set_state(RobEntry& e, EntryState s) noexcept {
      e.state = s;
      state_[slot(e)] = s;
    }
    void set_complete(RobEntry& e, std::uint64_t c) noexcept {
      e.complete_at = c;
      complete_[slot(e)] = c;
    }

    /// Entry with the given seq, or nullptr (retired/squashed/never
    /// existed). Binary search over the ascending-with-gaps seq mirror.
    [[nodiscard]] RobEntry* by_seq(std::uint64_t seq) noexcept;

   private:
    [[nodiscard]] std::size_t phys(std::size_t i) const noexcept {
      return (head_ + i) & mask_;
    }
    [[nodiscard]] std::size_t slot(const RobEntry& e) const noexcept {
      return static_cast<std::size_t>(&e - buf_.data());
    }
    void grow();

    static constexpr std::size_t kInitialCap = 64;

    std::vector<RobEntry> buf_;
    std::vector<EntryState> state_;
    std::vector<std::uint64_t> complete_;
    std::vector<std::uint64_t> seq_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
  };

  struct IdqEntry {
    std::int32_t pc = 0;
    isa::Instruction inst;
    bool predicted_taken = false;
    std::int32_t predicted_target = -1;
    bool pred_from_rsb = false;
    bool from_dsb = true;
    int uops = 1;
  };

  /// Pre-decoded per-instruction fields the pipeline consults on every
  /// fetch/alloc/execute/retire — the out-of-line Instruction::uops()/
  /// writes_flags() calls and the operand-register switch tables, resolved
  /// once per program and shared across trials via the decode cache.
  struct DecodedInst {
    isa::Reg src_a = isa::Reg::None;
    isa::Reg src_b = isa::Reg::None;
    isa::Reg dst = isa::Reg::None;
    std::int8_t uops = 1;
    bool writes_flags = false;
  };
  struct DecodedProgram {
    std::vector<DecodedInst> insts;
  };

  struct ThreadCtx {
    bool active = false;
    const isa::Program* prog = nullptr;
    std::shared_ptr<const DecodedProgram> dec;
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    isa::Flags flags{};
    bool user_mode = true;
    int signal_handler = -1;
    std::uint64_t code_base = 0;

    // Front end.
    std::int32_t fetch_pc = 0;
    bool fetch_halted = false;      // saw Halt / unpredicted RET
    std::uint64_t frontend_ready_at = 0;
    bool pending_mite_bubble = false;
    Ring<IdqEntry> idq;
    std::unordered_set<std::int32_t> dsb_blocks;
    int force_mite = 0;  // fetch groups forced through MITE after a resteer

    // Back end.
    RobRing rob;
    std::uint64_t next_seq = 1;
    std::uint64_t alloc_stall_until = 0;

    // Rename map: seq of the youngest in-flight writer of each register /
    // of the flags (0 = none). Retirement releases an entry only when the
    // map still points at it; a stale retired seq left behind reads
    // identically to 0 (architectural value, ready, untainted).
    std::array<std::uint64_t, isa::kNumRegs> reg_writer{};
    std::uint64_t flags_writer = 0;

    // Scheduling census, maintained by the account_* choke points. These
    // make the per-cycle PMU derivation and the issue-guard scans O(1) in
    // the common case, and feed the fast-forward inertness check.
    int waiting_count = 0;    // entries Waiting (reservation-station load)
    int issued_loads = 0;     // loads currently Issued (in flight)
    int done_count = 0;       // entries Done, not yet retired
    /// Seqs of the pending (non-Done) fences, ascending. Fence issue is
    /// serialised behind all older entries, so completions pop the front in
    /// order, and squashes pop non-Done entries youngest-first, i.e. the
    /// back — both O(1). fence_blocks() reduces to a front() comparison.
    std::vector<std::uint64_t> fence_seqs;
    int pending_stores = 0;   // stores (incl. CALL) not yet Done
    int pending_clflush = 0;  // CLFLUSHes not yet Done
    int pending_jcc = 0;      // conditional branches not yet Done
    int pending_ret = 0;      // returns not yet Done
    int pending_faults = 0;   // entries carrying a deferred fault
    /// Divides still Waiting. Non-zero means divider occupancy can gate an
    /// issue, so the fast-forward horizon must stop at divider_busy_until_
    /// — the census half of the divider's invariant-10 contract.
    int pending_div = 0;

    // Transient-window bookkeeping.
    bool window_mispredict = false;
    /// seq of the deferred-fault instruction that opened the current
    /// transient window (0 = none). Only the trace hooks read this; it
    /// never influences timing or architectural state.
    std::uint64_t window_open_seq = 0;

    // TSX (set/cleared at retirement).
    bool in_tsx = false;
    std::int32_t tsx_abort_target = -1;

    // Results.
    bool halted = false;
    bool killed = false;
    std::uint64_t retired = 0;
    std::vector<std::uint64_t> tsc_out;
  };

  /// Reset a context to its default-constructed state while recycling the
  /// heap storage of its containers (ROB/IDQ rings, DSB set, tsc log).
  /// run() re-primes a context once per program invocation — thousands of
  /// times per trial — and must not re-grow the rings from scratch each
  /// time.
  static void recycle(ThreadCtx& ctx);

  RunResult run_internal(std::uint64_t cycle_limit);

  void step_fetch(int t);
  void step_alloc(int t);
  void step_issue();
  void step_complete();
  void step_retire(int t);
  void per_cycle_pmu();

  /// All issue-gate checks except port capacity: fence serialisation,
  /// store/clflush drain ordering, operand readiness. Side-effect free —
  /// shared between try_issue_entry and the fast-forward dry run.
  [[nodiscard]] bool issue_ready(ThreadCtx& ctx, const RobEntry& e);
  /// If the coming cycle is provably inert (single-thread mode only),
  /// advance cycle/PMU state to the exact horizon where the pipeline next
  /// acts and return true. When the noise hook raises an interrupt at some
  /// cycle inside the span, stops there with `pending_interrupt` set so the
  /// caller runs that cycle structurally. Returns false (no side effects)
  /// when the cycle must be stepped structurally.
  bool try_fast_forward(std::uint64_t deadline,
                        std::uint64_t& pending_interrupt);

  void try_issue_entry(ThreadCtx& ctx, RobEntry& e, int& loads, int& stores,
                       int& branches, int& issued_uops);
  void execute_entry(ThreadCtx& ctx, RobEntry& e);
  void resolve_branch(ThreadCtx& ctx, RobEntry& e, bool actual_taken,
                      std::int32_t actual_target);
  void handle_transient_shortcuts(ThreadCtx& ctx, const RobEntry& branch);
  void machine_clear(int t, RobEntry& faulting);
  /// Asynchronous (timer) interrupt: drain + resteer every active thread
  /// through the machine-clear recovery path, charging `handler_cycles` of
  /// handler time on top of the clear penalty.
  void inject_interrupt(std::uint64_t handler_cycles);
  void squash_younger(ThreadCtx& ctx, std::uint64_t seq);
  void squash_all(ThreadCtx& ctx);
  void undo_store(const RobEntry& e);
  void redirect_fetch(ThreadCtx& ctx, std::int32_t target);

  // Census/rename bookkeeping choke points (see ThreadCtx counters).
  static void account_alloc(ThreadCtx& ctx, const RobEntry& e);
  static void account_issue(ThreadCtx& ctx, const RobEntry& e);
  static void account_done(ThreadCtx& ctx, const RobEntry& e);
  static void account_remove(ThreadCtx& ctx, const RobEntry& e);
  static void unrename(ThreadCtx& ctx, const RobEntry& e);

  /// Decoded form of `prog`, via the content-hash-keyed decode cache.
  [[nodiscard]] std::shared_ptr<const DecodedProgram> decoded_for(
      const isa::Program& prog);

  [[nodiscard]] RobEntry* find_entry(ThreadCtx& ctx, std::uint64_t seq);
  [[nodiscard]] std::uint64_t read_operand(ThreadCtx& ctx, isa::Reg r,
                                           std::uint64_t producer);
  [[nodiscard]] isa::Flags read_flags(ThreadCtx& ctx, std::uint64_t producer);
  [[nodiscard]] bool operand_ready(ThreadCtx& ctx, std::uint64_t producer)
      const;
  [[nodiscard]] bool operand_tainted(ThreadCtx& ctx, std::uint64_t producer);
  [[nodiscard]] bool fence_blocks(const ThreadCtx& ctx,
                                  std::uint64_t seq) const;
  [[nodiscard]] bool older_window_exists(const ThreadCtx& ctx,
                                         std::uint64_t seq) const;
  /// "window" defense gate: allocation blocked because the configured
  /// transient-depth clamp is full. Side-effect free — shared between
  /// step_alloc and the fast-forward dry run (invariant 10).
  [[nodiscard]] bool alloc_window_clamped(const ThreadCtx& ctx) const;

  void trace(int thread, TraceEvent event, const RobEntry* e = nullptr,
             std::uint64_t count = 0);
  void trace_raw(int thread, TraceEvent event, std::int32_t pc,
                 isa::Opcode op, std::uint64_t seq);

  CpuConfig cfg_;
  mem::MemorySystem& mem_;
  Pmu pmu_;
  BranchPredictor bpu_;
  stats::Xoshiro256 rng_;
  TraceSink* trace_ = nullptr;
  CoreInterference* noise_ = nullptr;
  bool fast_forward_ = true;

  std::uint64_t cycle_ = 0;
  std::uint64_t avx_warm_until_ = 0;  // AVX power-gating state
  /// Non-pipelined divider occupancy: no divide issues before this cycle.
  /// Set at divide issue, it outlives a squash of the divide that set it
  /// (the SpectreRewind residue); cleared only by machine clears,
  /// interrupts and reset(). issue_ready() gates on it and
  /// try_fast_forward() clamps its horizon to it, so both execution modes
  /// honour the occupancy identically (invariant 10).
  std::uint64_t divider_busy_until_ = 0;
  std::uint64_t shared_frontend_busy_until_ = 0;
  int nthreads_ = 1;
  std::array<ThreadCtx, 2> ctx_{};

  // The DSB (µop cache) persists across run() calls while the same program
  // occupies the code region — an attack loop probes with a warm DSB, as on
  // real hardware. A different program at the same addresses invalidates it
  // (self-modifying-code nuke).
  std::array<const isa::Program*, 2> last_prog_{};
  std::array<std::unordered_set<std::int32_t>, 2> persistent_dsb_{};

  // Per-program decode cache, shared across trials that reuse this machine.
  // Keyed by Program::content_hash() — identity by content, so a trial that
  // rebuilds the same attack program into a fresh object still hits, and a
  // genuinely different program at the same address naturally misses (the
  // content key IS the invalidation). MRU at the front, bounded depth.
  // Survives Core::reset(): decoding is a pure function of program content.
  static constexpr std::size_t kDecodeCacheCap = 8;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const DecodedProgram>>>
      decode_cache_;
  DecodeCacheStats decode_stats_;

  // Per-cycle scratch used by per_cycle_pmu().
  int issued_uops_this_cycle_ = 0;
  int alloc_uops_this_cycle_ = 0;
};

}  // namespace whisper::uarch
