// The out-of-order core model.
//
// A structural pipeline — fetch/decode (DSB vs MITE), allocate, issue to
// ports, execute, in-order retire — sized and parameterised by CpuConfig.
// It models exactly the mechanisms the paper's root-cause analysis
// identifies (§5):
//
//  * Faulting loads defer the fault to retirement; younger instructions
//    execute transiently on (possibly forwarded) data.
//  * A transient conditional branch still resolves in the back end; on
//    misprediction it resteers the front end (CLEAR_RESTEER cycles, MITE
//    refetch) and leaves recovery work that the terminal machine clear must
//    drain — the Whisper ToTE delta for exception windows (trigger=longer).
//  * For assist-terminated windows (MDS) and RSB windows, a dependent
//    transient mispredict initiates the squash early (trigger=shorter).
//  * Machine clears redirect to a TSX abort target or a signal handler,
//    with very different costs — which is why TET-RSB reaches KB/s while
//    TET-MD stays at tens of B/s (§4.1).
//  * Two SMT contexts share the front end; a machine clear on one stalls
//    the other — the §4.4 covert channel.
//
// Architectural state is only changed at retirement (stores are applied
// eagerly but logged and undone on squash), so transient execution is
// invisible at the ISA level — as required for a transient-attack study.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"
#include "mem/memory_system.h"
#include "stats/rng.h"
#include "uarch/branch_predictor.h"
#include "uarch/trace.h"
#include "uarch/config.h"
#include "uarch/pmu.h"

namespace whisper::uarch {

/// Interference hook driven once per simulated cycle while the core is
/// running (whisper::noise::NoiseEngine implements it). The return value is
/// an interrupt-handler cost in cycles: non-zero means "an asynchronous
/// interrupt arrives now" — the core squashes all in-flight work on every
/// active thread, resteers to the next unretired instruction, and stalls
/// the front end for the returned cost on top of the machine-clear penalty.
/// Implementations use the hook's cycle argument for their own scheduling
/// (DVFS steps, TLB shootdowns) and must be deterministic in (seed, cycle).
class CoreInterference {
 public:
  virtual ~CoreInterference() = default;
  [[nodiscard]] virtual std::uint64_t on_cycle(std::uint64_t cycle) = 0;
};

/// Initial architectural state for one hardware thread.
struct InitState {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  isa::Flags flags{};
  /// Instruction index to redirect to when a fault retires outside a TSX
  /// region (the signal-handler suppression of the paper's
  /// `transient_begin`); -1 kills the thread.
  int signal_handler = -1;
  bool user_mode = true;
  /// Virtual base address of the code, for i-side TLB modelling.
  std::uint64_t code_base = 0x0000000000400000ull;
};

struct ThreadResult {
  bool halted = false;
  bool killed_by_fault = false;
  std::uint64_t instructions_retired = 0;
  /// Values of retired RDTSC instructions, in program order.
  std::vector<std::uint64_t> tsc;
  std::array<std::uint64_t, isa::kNumRegs> regs{};
};

struct RunResult {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  bool cycle_limit_hit = false;
  std::array<ThreadResult, 2> thread;

  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return end_cycle - start_cycle;
  }
  [[nodiscard]] const ThreadResult& t0() const noexcept { return thread[0]; }
};

class Core {
 public:
  Core(const CpuConfig& cfg, mem::MemorySystem& mem);

  /// Run a single program on hardware thread 0 until Halt, kill, or limit.
  RunResult run(const isa::Program& prog, const InitState& init,
                std::uint64_t cycle_limit = 1'000'000);

  /// Run two programs on the SMT sibling threads (§4.4 covert channel).
  RunResult run_smt(const isa::Program& p0, const InitState& i0,
                    const isa::Program& p1, const InitState& i1,
                    std::uint64_t cycle_limit = 10'000'000);

  [[nodiscard]] Pmu& pmu() noexcept { return pmu_; }
  [[nodiscard]] const Pmu& pmu() const noexcept { return pmu_; }
  [[nodiscard]] BranchPredictor& bpu() noexcept { return bpu_; }
  [[nodiscard]] const CpuConfig& config() const noexcept { return cfg_; }
  /// Free-running cycle counter (persists across run() calls, like TSC).
  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

  /// Forget predictor state (models a context switch / fresh victim).
  void reset_bpu() { bpu_.reset(); }

  /// Return the core to its post-construction state — cycle counter, PMU,
  /// BPU, DSB, SMT contexts and scratch all cleared, the jitter RNG
  /// re-derived exactly as construction with cfg.seed = seed would. The
  /// attached trace/interference hooks are left untouched (os::Machine and
  /// the runner manage those).
  void reset(std::uint64_t seed);

  /// Attach (or detach with nullptr) a pipeline trace sink. Any TraceSink
  /// works: the bounded uarch::PipelineTrace ring for tests, or the
  /// unbounded obs::EventLog feeding the Chrome-trace exporter. With no
  /// sink attached every hook is a branch on a null pointer.
  void set_trace(TraceSink* trace) noexcept { trace_ = trace; }

  /// Attach (or detach with nullptr) an interference source. Same contract
  /// as set_trace: with none attached the per-cycle hook is a branch on a
  /// null pointer and the run is cycle-identical to an unhooked core.
  void set_interference(CoreInterference* noise) noexcept { noise_ = noise; }

  /// Advance the free-running cycle counter without executing anything —
  /// used by the OS layer to charge attacker-side overheads (TLB eviction
  /// buffers, process synchronisation) to simulated time.
  void advance(std::uint64_t cycles) noexcept { cycle_ += cycles; }

 private:
  enum class EntryState : std::uint8_t { Waiting, Issued, Done };

  struct RobEntry {
    std::uint64_t seq = 0;
    std::int32_t pc = 0;
    isa::Instruction inst;
    EntryState state = EntryState::Waiting;
    int uops = 1;

    // Dataflow: seq of the youngest older producer of each operand
    // (0 = read architectural state).
    std::uint64_t prod_a = 0;   // first source register
    std::uint64_t prod_b = 0;   // second source register
    std::uint64_t prod_flags = 0;

    // Results.
    std::uint64_t result = 0;
    isa::Flags flags_out{};
    bool writes_reg = false;
    bool writes_flags = false;

    // Timing.
    std::uint64_t complete_at = 0;   // when the entry becomes Done
    std::uint64_t forward_at = 0;    // when dependents may consume `result`

    // Memory / fault.
    mem::Fault fault = mem::Fault::None;
    bool data_forwarded = false;
    bool stale_tainted = false;   // dataflow touched stale LFB data (MDS)
    bool early_cleared = false;   // assist squashed early by transient misp.
    bool store_applied = false;
    std::uint64_t store_paddr = 0;
    std::uint64_t store_old = 0;
    std::uint8_t store_size = 8;

    // Branch bookkeeping.
    bool predicted_taken = false;
    std::int32_t predicted_target = -1;
    bool pred_from_rsb = false;
  };

  struct IdqEntry {
    std::int32_t pc = 0;
    isa::Instruction inst;
    bool predicted_taken = false;
    std::int32_t predicted_target = -1;
    bool pred_from_rsb = false;
    bool from_dsb = true;
    int uops = 1;
  };

  struct ThreadCtx {
    bool active = false;
    const isa::Program* prog = nullptr;
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    isa::Flags flags{};
    bool user_mode = true;
    int signal_handler = -1;
    std::uint64_t code_base = 0;

    // Front end.
    std::int32_t fetch_pc = 0;
    bool fetch_halted = false;      // saw Halt / unpredicted RET
    std::uint64_t frontend_ready_at = 0;
    bool pending_mite_bubble = false;
    std::deque<IdqEntry> idq;
    std::unordered_set<std::int32_t> dsb_blocks;
    int force_mite = 0;  // fetch groups forced through MITE after a resteer

    // Back end.
    std::deque<RobEntry> rob;
    std::uint64_t next_seq = 1;
    std::uint64_t alloc_stall_until = 0;

    // Transient-window bookkeeping.
    bool window_mispredict = false;
    /// seq of the deferred-fault instruction that opened the current
    /// transient window (0 = none). Only the trace hooks read this; it
    /// never influences timing or architectural state.
    std::uint64_t window_open_seq = 0;

    // TSX (set/cleared at retirement).
    bool in_tsx = false;
    std::int32_t tsx_abort_target = -1;

    // Results.
    bool halted = false;
    bool killed = false;
    std::uint64_t retired = 0;
    std::vector<std::uint64_t> tsc_out;
  };

  RunResult run_internal(std::uint64_t cycle_limit);

  void step_fetch(int t);
  void step_alloc(int t);
  void step_issue();
  void step_complete();
  void step_retire(int t);
  void per_cycle_pmu();

  void try_issue_entry(ThreadCtx& ctx, RobEntry& e, int& loads, int& stores,
                       int& branches, int& issued_uops);
  void execute_entry(ThreadCtx& ctx, RobEntry& e);
  void resolve_branch(ThreadCtx& ctx, RobEntry& e, bool actual_taken,
                      std::int32_t actual_target);
  void handle_transient_shortcuts(ThreadCtx& ctx, const RobEntry& branch);
  void machine_clear(int t, RobEntry& faulting);
  /// Asynchronous (timer) interrupt: drain + resteer every active thread
  /// through the machine-clear recovery path, charging `handler_cycles` of
  /// handler time on top of the clear penalty.
  void inject_interrupt(std::uint64_t handler_cycles);
  void squash_younger(ThreadCtx& ctx, std::uint64_t seq);
  void squash_all(ThreadCtx& ctx);
  void undo_store(const RobEntry& e);
  void redirect_fetch(ThreadCtx& ctx, std::int32_t target);

  [[nodiscard]] RobEntry* find_entry(ThreadCtx& ctx, std::uint64_t seq);
  [[nodiscard]] std::uint64_t read_operand(ThreadCtx& ctx, isa::Reg r,
                                           std::uint64_t producer);
  [[nodiscard]] isa::Flags read_flags(ThreadCtx& ctx, std::uint64_t producer);
  [[nodiscard]] bool operand_ready(ThreadCtx& ctx, std::uint64_t producer)
      const;
  [[nodiscard]] bool operand_tainted(ThreadCtx& ctx, std::uint64_t producer);
  [[nodiscard]] bool fence_blocks(const ThreadCtx& ctx,
                                  std::uint64_t seq) const;
  [[nodiscard]] bool older_window_exists(const ThreadCtx& ctx,
                                         std::uint64_t seq) const;

  void trace(int thread, TraceEvent event, const RobEntry* e = nullptr,
             std::uint64_t count = 0);
  void trace_raw(int thread, TraceEvent event, std::int32_t pc,
                 isa::Opcode op, std::uint64_t seq);

  CpuConfig cfg_;
  mem::MemorySystem& mem_;
  Pmu pmu_;
  BranchPredictor bpu_;
  stats::Xoshiro256 rng_;
  TraceSink* trace_ = nullptr;
  CoreInterference* noise_ = nullptr;

  std::uint64_t cycle_ = 0;
  std::uint64_t avx_warm_until_ = 0;  // AVX power-gating state
  std::uint64_t shared_frontend_busy_until_ = 0;
  int nthreads_ = 1;
  std::array<ThreadCtx, 2> ctx_{};

  // The DSB (µop cache) persists across run() calls while the same program
  // occupies the code region — an attack loop probes with a warm DSB, as on
  // real hardware. A different program at the same addresses invalidates it
  // (self-modifying-code nuke).
  std::array<const isa::Program*, 2> last_prog_{};
  std::array<std::unordered_set<std::int32_t>, 2> persistent_dsb_{};

  // Per-cycle scratch used by per_cycle_pmu().
  int issued_uops_this_cycle_ = 0;
  int alloc_uops_this_cycle_ = 0;
};

}  // namespace whisper::uarch
