#include "uarch/trace.h"

#include <sstream>

namespace whisper::uarch {

std::string to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::Fetch: return "fetch";
    case TraceEvent::Alloc: return "alloc";
    case TraceEvent::Issue: return "issue";
    case TraceEvent::Complete: return "complete";
    case TraceEvent::Retire: return "retire";
    case TraceEvent::Squash: return "squash-entry";
    case TraceEvent::Mispredict: return "mispredict";
    case TraceEvent::Resteer: return "resteer";
    case TraceEvent::SquashYounger: return "squash";
    case TraceEvent::MachineClear: return "machine-clear";
    case TraceEvent::SignalRedirect: return "signal-redirect";
    case TraceEvent::TsxAbort: return "tsx-abort";
    case TraceEvent::WindowOpen: return "window-open";
    case TraceEvent::WindowClose: return "window-close";
  }
  return "?";
}

std::string TraceRecord::to_string() const {
  std::ostringstream out;
  out << cycle << "\tT" << thread << '\t' << uarch::to_string(event);
  if (pc >= 0)
    out << "\tpc=" << pc << '\t' << isa::to_string(op) << "\tseq=" << seq;
  else if (event == TraceEvent::SquashYounger)
    out << "\tdropped=" << seq;
  return out.str();
}

std::vector<TraceRecord> PipelineTrace::records() const {
  if (!wrapped_) return records_;
  std::vector<TraceRecord> out;
  out.reserve(records_.size());
  const std::size_t start = next_ % capacity_;
  for (std::size_t i = 0; i < records_.size(); ++i)
    out.push_back(records_[(start + i) % capacity_]);
  return out;
}

std::size_t PipelineTrace::count(TraceEvent e, std::int32_t pc) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_)
    if (r.event == e && (pc < 0 || r.pc == pc)) ++n;
  return n;
}

std::string PipelineTrace::to_string() const {
  std::ostringstream out;
  out << "cycle\tthr\tevent\n";
  for (const TraceRecord& r : records()) out << r.to_string() << '\n';
  return out.str();
}

}  // namespace whisper::uarch
