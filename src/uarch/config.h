// CPU model configuration.
//
// One CpuConfig instance fully determines the pipeline model: widths,
// penalties, predictor sizes, memory geometry, and — critically for Table 2 —
// the per-model vulnerability policy flags. Factory functions provide the
// five machines of the paper's evaluation (Table 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_system.h"

namespace whisper::uarch {

enum class CpuModel : std::uint8_t {
  SkylakeI7_6700,      // Intel Core i7-6700, microcode 0xf0
  KabyLakeI7_7700,     // Intel Core i7-7700, microcode 0x5e
  CometLakeI9_10980XE, // Intel Core i9-10980XE, microcode 0x5003303
  RaptorLakeI9_13900K, // Intel Core i9-13900K, microcode 0x119
  Zen3Ryzen5_5600G,    // AMD Ryzen 5 5600G, microcode 0xA50000D
};

enum class Vendor : std::uint8_t { Intel, Amd };

/// How a transient window terminates relative to a transient branch
/// misprediction — the sign of the Whisper timing delta (DESIGN.md §1.1-1.2).
/// Exception windows drain the resteer into the machine clear (longer ToTE);
/// assist/RSB windows squash early (shorter ToTE).
struct CpuConfig {
  CpuModel model = CpuModel::KabyLakeI7_7700;
  Vendor vendor = Vendor::Intel;
  std::string name = "Intel Core i7-7700";
  std::string uarch_name = "Kaby Lake";
  std::string microcode = "0x5e";
  std::string kernel = "5.4.0-150";
  double ghz = 3.6;

  // Pipeline widths and buffer sizes.
  int fetch_width_dsb = 6;   // µops/cycle from the µop cache
  int fetch_width_mite = 4;  // µops/cycle through legacy decode
  int alloc_width = 4;       // µops/cycle rename/allocate
  int issue_width = 8;       // µops/cycle to execution ports
  int retire_width = 4;      // instructions/cycle retired
  int rob_size = 224;
  int rs_size = 97;
  int idq_size = 64;

  // Port capacity per cycle by µop class.
  int load_ports = 2;
  int store_ports = 1;
  int branch_ports = 2;

  /// The divider is a single non-pipelined unit: while one divide iterates,
  /// no other divide may issue (divider_busy_until_ in Core). A divide's
  /// occupancy is a persistent side effect of *execution* — a transiently
  /// issued FDIV keeps the unit busy after its squash, like a cache fill —
  /// which is the SpectreRewind contention channel's substrate. Divisors of
  /// 0/1 need no quotient iterations and early-exit in div_fast_latency.
  int div_latency = 24;
  int div_fast_latency = 2;

  // Control-flow penalties (cycles).
  int resteer_cycles = 12;       // frontend bubble after a mispredict resteer
  int recovery_extra_cycles = 6; // allocation stall while the RAT recovers
  int machine_clear_cycles = 36; // pipeline flush when a fault retires
  int tsx_abort_cycles = 45;     // extra cost of a transaction abort
  int signal_dispatch_cycles = 3000;  // kernel #PF + signal delivery + return
  int mite_decode_latency = 4;   // bubble when refetching via MITE (DSB cold)
  int forward_latency = 6;       // faulting load: cycles until data forwards

  // Whisper deltas.
  // Exception-terminated window: extra machine-clear drain when a transient
  // branch mispredicted inside the window (TET-MD/CC: trigger => longer).
  int transient_resteer_clear_penalty = 10;
  // Assist/RSB windows: a dependent transient mispredict initiates the squash
  // early (TET-ZBL/RSB: trigger => shorter).
  bool early_clear_on_transient_mispredict = true;
  int early_ret_resolve_cycles = 3;

  // Branch prediction.
  int pht_index_bits = 12;
  int btb_entries = 4096;
  int rsb_entries = 16;
  bool rsb_speculates = true;  // RSB drives ret prediction (Spectre-RSB)

  /// AVX-unit power gating (the AVX-timing side channel's substrate,
  /// §2.1/§6.1): a cold 256-bit op pays the power-up latency; the unit
  /// stays warm for a window afterwards. Executing an AVX op *transiently*
  /// still powers the unit up — a persistent side effect, like a cache
  /// fill. Setting `avx_power_gating=false` models the "replace AVX
  /// instructions" mitigation the paper says does NOT stop TET.
  bool avx_power_gating = true;
  int avx_power_up_cycles = 150;
  int avx_warm_cycles = 4096;

  // Defense knobs (src/defense). All default off — a preset config is a
  // defenseless machine; defense::apply() flips them on the MachineOptions
  // config override at construction time, never on a live core.
  /// "lfence": dispatch stalls while an older conditional branch is
  /// unresolved, as if the compiler placed an LFENCE after every Jcc.
  bool lfence_after_branch = false;
  /// "window": at most this many uops may be allocated past the oldest
  /// unresolved branch/ret/fault (0 = unlimited).
  int speculation_window_limit = 0;
  /// "flushclear": every machine clear also flushes `flush_on_clear_levels`
  /// cache levels and drains the line-fill buffer.
  bool flush_on_clear = false;
  int flush_on_clear_levels = 1;

  /// TSX available for exception suppression (`transient_begin` can use a
  /// transaction instead of a signal handler — much cheaper per probe).
  bool has_tsx = true;

  bool smt = true;

  // Attacker-side OS overheads charged to simulated time (cycles).
  int tlb_eviction_cycles = 1500;   // evicting the TLBs via a large buffer
  int channel_sync_cycles = 360000;  // cross-process rendezvous (~100 us)

  mem::MemConfig mem;
  std::uint64_t seed = 0x715b5eedULL;

  [[nodiscard]] bool meltdown_vulnerable() const noexcept {
    return mem.meltdown_forwards_data;
  }
  [[nodiscard]] bool mds_vulnerable() const noexcept {
    return mem.lfb_forwards_stale;
  }
  [[nodiscard]] bool tlb_fills_on_fault() const noexcept {
    return mem.tlb_fill_on_permission_fault;
  }
};

/// Factory for the five machines of Table 2.
[[nodiscard]] CpuConfig make_config(CpuModel model);

/// All models, in Table 2 order.
[[nodiscard]] std::vector<CpuModel> all_models();

[[nodiscard]] std::string to_string(CpuModel model);

}  // namespace whisper::uarch
