// A contiguous power-of-two ring buffer with deque semantics.
//
// The pipeline's hot structures — the IDQ and the ROB — are bounded FIFO-ish
// queues that also pop from the back on squash. std::deque satisfies the
// interface but scatters elements across heap chunks and walks a map of
// pointers on every index; this ring keeps everything in one allocation so
// the per-cycle scans of the core are linear sweeps. Capacity grows by
// doubling and is never given back: clear() keeps the storage so a machine
// reused across trials stops allocating after its first run.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace whisper::uarch {

template <typename T>
class Ring {
 public:
  Ring() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] T& front() noexcept { return (*this)[0]; }
  [[nodiscard]] const T& front() const noexcept { return (*this)[0]; }
  [[nodiscard]] T& back() noexcept { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }
  void pop_front() noexcept {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }
  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }
  /// Drop all elements; storage (and element payloads past size()) are kept.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? kInitialCap : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kInitialCap = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace whisper::uarch
