// Performance monitor unit model.
//
// Counts the named Intel and AMD events used in the paper's root-cause
// analysis (Table 3). Events are incremented by the pipeline and the memory
// system at the points that generate them on real hardware; the PmuToolset
// (src/core/pmu_toolset) then replays the paper's differential analysis on
// top of snapshots of these counters.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_system.h"
#include "uarch/config.h"

namespace whisper::uarch {

enum class PmuEvent : std::uint16_t {
  // --- Intel: branch / speculation ---
  BR_MISP_EXEC_INDIRECT,
  BR_MISP_EXEC_ALL_BRANCHES,
  BR_MISP_RETIRED_ALL_BRANCHES,
  MACHINE_CLEARS_COUNT,
  INT_MISC_RECOVERY_CYCLES,
  INT_MISC_RECOVERY_CYCLES_ANY,
  INT_MISC_CLEAR_RESTEER_CYCLES,
  // --- Intel: front end ---
  IDQ_DSB_UOPS,
  IDQ_MS_DSB_CYCLES,
  IDQ_DSB_CYCLES_OK,
  IDQ_DSB_CYCLES_ANY,
  IDQ_MS_MITE_UOPS,
  IDQ_ALL_MITE_CYCLES_ANY_UOPS,
  IDQ_MS_UOPS,
  ICACHE_16B_IFDATA_STALL,
  // --- Intel: allocation / back end ---
  UOPS_ISSUED_ANY,
  UOPS_ISSUED_STALL_CYCLES,
  UOPS_EXECUTED_CORE_CYCLES_NONE,
  UOPS_EXECUTED_STALL_CYCLES,
  RESOURCE_STALLS_ANY,
  RS_EVENTS_EMPTY_CYCLES,
  CYCLE_ACTIVITY_STALLS_TOTAL,
  CYCLE_ACTIVITY_CYCLES_MEM_ANY,
  UOPS_RETIRED_ALL,
  // --- Intel: memory subsystem ---
  DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK,
  DTLB_LOAD_MISSES_WALK_ACTIVE,
  ITLB_MISSES_WALK_ACTIVE,
  DTLB_LOAD_MISSES_STLB_HIT,
  MEM_LOAD_RETIRED_L1_HIT,
  MEM_LOAD_RETIRED_L2_HIT,
  MEM_LOAD_RETIRED_L3_HIT,
  MEM_LOAD_RETIRED_DRAM,
  // --- AMD (Zen 3) ---
  BP_L1_BTB_CORRECT,
  BP_L1_TLB_FETCH_HIT,
  DE_DIS_UOP_QUEUE_EMPTY_DI0,
  DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL,
  IC_FW32,
  // --- model-internal (not a hardware event, still useful in tests) ---
  CORE_CYCLES,
  Count,
};

inline constexpr std::size_t kNumPmuEvents =
    static_cast<std::size_t>(PmuEvent::Count);

[[nodiscard]] std::string to_string(PmuEvent e);
/// Vendor whose perf list carries this event (CORE_CYCLES: both).
[[nodiscard]] Vendor event_vendor(PmuEvent e);

using PmuSnapshot = std::array<std::uint64_t, kNumPmuEvents>;

/// Difference of two snapshots (after - before), saturating at zero.
[[nodiscard]] PmuSnapshot pmu_delta(const PmuSnapshot& before,
                                    const PmuSnapshot& after);

class Pmu final : public mem::MemEventSink {
 public:
  explicit Pmu(Vendor vendor) : vendor_(vendor) {}

  void inc(PmuEvent e, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(e)] += n;
  }
  [[nodiscard]] std::uint64_t value(PmuEvent e) const noexcept {
    return counters_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] PmuSnapshot snapshot() const noexcept { return counters_; }
  void reset() noexcept { counters_.fill(0); }
  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }

  // mem::MemEventSink
  void on_dtlb_miss_walk(int walks) override {
    inc(PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK,
        static_cast<std::uint64_t>(walks));
  }
  void on_dtlb_walk_cycles(int cycles) override {
    inc(PmuEvent::DTLB_LOAD_MISSES_WALK_ACTIVE,
        static_cast<std::uint64_t>(cycles));
  }
  void on_itlb_walk_cycles(int cycles) override {
    inc(PmuEvent::ITLB_MISSES_WALK_ACTIVE, static_cast<std::uint64_t>(cycles));
  }
  void on_stlb_hit() override { inc(PmuEvent::DTLB_LOAD_MISSES_STLB_HIT); }
  void on_cache_hit(int level) override {
    switch (level) {
      case 1: inc(PmuEvent::MEM_LOAD_RETIRED_L1_HIT); break;
      case 2: inc(PmuEvent::MEM_LOAD_RETIRED_L2_HIT); break;
      case 3: inc(PmuEvent::MEM_LOAD_RETIRED_L3_HIT); break;
      default: break;
    }
  }
  void on_dram_access() override { inc(PmuEvent::MEM_LOAD_RETIRED_DRAM); }

 private:
  Vendor vendor_;
  PmuSnapshot counters_{};
};

}  // namespace whisper::uarch
