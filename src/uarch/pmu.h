// Performance monitor unit model.
//
// Counts the named Intel and AMD events used in the paper's root-cause
// analysis (Table 3). Events are incremented by the pipeline and the memory
// system at the points that generate them on real hardware; the PmuToolset
// (src/core/pmu_toolset) then replays the paper's differential analysis on
// top of snapshots of these counters.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_system.h"
#include "uarch/config.h"

namespace whisper::uarch {

enum class PmuEvent : std::uint16_t {
  // --- Intel: branch / speculation ---
  BR_MISP_EXEC_INDIRECT,
  BR_MISP_EXEC_ALL_BRANCHES,
  BR_MISP_RETIRED_ALL_BRANCHES,
  MACHINE_CLEARS_COUNT,
  INT_MISC_RECOVERY_CYCLES,
  INT_MISC_RECOVERY_CYCLES_ANY,
  INT_MISC_CLEAR_RESTEER_CYCLES,
  // --- Intel: front end ---
  IDQ_DSB_UOPS,
  IDQ_MS_DSB_CYCLES,
  IDQ_DSB_CYCLES_OK,
  IDQ_DSB_CYCLES_ANY,
  IDQ_MS_MITE_UOPS,
  IDQ_ALL_MITE_CYCLES_ANY_UOPS,
  IDQ_MS_UOPS,
  ICACHE_16B_IFDATA_STALL,
  // --- Intel: allocation / back end ---
  UOPS_ISSUED_ANY,
  UOPS_ISSUED_STALL_CYCLES,
  UOPS_EXECUTED_CORE_CYCLES_NONE,
  UOPS_EXECUTED_STALL_CYCLES,
  RESOURCE_STALLS_ANY,
  RS_EVENTS_EMPTY_CYCLES,
  CYCLE_ACTIVITY_STALLS_TOTAL,
  CYCLE_ACTIVITY_CYCLES_MEM_ANY,
  UOPS_RETIRED_ALL,
  // --- Intel: memory subsystem ---
  DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK,
  DTLB_LOAD_MISSES_WALK_ACTIVE,
  ITLB_MISSES_WALK_ACTIVE,
  DTLB_LOAD_MISSES_STLB_HIT,
  MEM_LOAD_RETIRED_L1_HIT,
  MEM_LOAD_RETIRED_L2_HIT,
  MEM_LOAD_RETIRED_L3_HIT,
  MEM_LOAD_RETIRED_DRAM,
  // --- AMD (Zen 3) ---
  BP_L1_BTB_CORRECT,
  BP_L1_TLB_FETCH_HIT,
  DE_DIS_UOP_QUEUE_EMPTY_DI0,
  DE_DIS_DISPATCH_TOKEN_STALLS2_RETIRE_TOKEN_STALL,
  IC_FW32,
  // --- model-internal (not a hardware event, still useful in tests) ---
  CORE_CYCLES,
  Count,
};

inline constexpr std::size_t kNumPmuEvents =
    static_cast<std::size_t>(PmuEvent::Count);

[[nodiscard]] std::string to_string(PmuEvent e);
/// Vendor whose perf list carries this event (CORE_CYCLES: both).
[[nodiscard]] Vendor event_vendor(PmuEvent e);

using PmuSnapshot = std::array<std::uint64_t, kNumPmuEvents>;

/// Difference of two snapshots (after - before), saturating at zero.
[[nodiscard]] PmuSnapshot pmu_delta(const PmuSnapshot& before,
                                    const PmuSnapshot& after);

class Pmu final {
 public:
  explicit Pmu(Vendor vendor) : vendor_(vendor) {}

  void inc(PmuEvent e, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(e)] += n;
  }
  [[nodiscard]] std::uint64_t value(PmuEvent e) const noexcept {
    return counters_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] PmuSnapshot snapshot() const noexcept { return counters_; }
  void reset() noexcept { counters_.fill(0); }
  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }

  /// The memory-subsystem counter window handed to
  /// mem::MemorySystem::set_counter_window: the eight mem-side PmuEvents are
  /// laid out contiguously in exactly mem::MemCounter order, so the memory
  /// system increments them with a raw indexed add instead of a virtual
  /// event callback. Stable for the lifetime of the Pmu (reset() zeroes the
  /// counters in place; it never reseats the array).
  [[nodiscard]] std::uint64_t* mem_counter_window() noexcept {
    return &counters_[static_cast<std::size_t>(
        PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK)];
  }

 private:
  static_assert(
      static_cast<std::size_t>(PmuEvent::DTLB_LOAD_MISSES_WALK_ACTIVE) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kDtlbWalkCycles) &&
      static_cast<std::size_t>(PmuEvent::ITLB_MISSES_WALK_ACTIVE) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kItlbWalkCycles) &&
      static_cast<std::size_t>(PmuEvent::DTLB_LOAD_MISSES_STLB_HIT) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kStlbHits) &&
      static_cast<std::size_t>(PmuEvent::MEM_LOAD_RETIRED_L1_HIT) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kL1Hit) &&
      static_cast<std::size_t>(PmuEvent::MEM_LOAD_RETIRED_L2_HIT) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kL2Hit) &&
      static_cast<std::size_t>(PmuEvent::MEM_LOAD_RETIRED_L3_HIT) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kL3Hit) &&
      static_cast<std::size_t>(PmuEvent::MEM_LOAD_RETIRED_DRAM) ==
          static_cast<std::size_t>(
              PmuEvent::DTLB_LOAD_MISSES_MISS_CAUSES_A_WALK) +
              static_cast<std::size_t>(mem::MemCounter::kDram),
      "the mem-subsystem PmuEvents must stay contiguous and ordered to match "
      "mem::MemCounter — the counter window indexes them directly");

  Vendor vendor_;
  PmuSnapshot counters_{};
};

}  // namespace whisper::uarch
