#include "uarch/branch_predictor.h"

namespace whisper::uarch {

BranchPredictor::BranchPredictor(const CpuConfig& cfg) : cfg_(cfg) {
  pht_.assign(std::size_t{1} << cfg_.pht_index_bits, 1);  // weakly not-taken
  btb_.assign(static_cast<std::size_t>(cfg_.btb_entries), -1);
  rsb_.assign(static_cast<std::size_t>(cfg_.rsb_entries), -1);
}

void BranchPredictor::reset() {
  pht_.assign(pht_.size(), 1);
  btb_.assign(btb_.size(), -1);
  rsb_.assign(rsb_.size(), -1);
  ghist_ = 0;
  rsb_top_ = 0;
  rsb_valid_ = 0;
}

std::size_t BranchPredictor::pht_index(std::int32_t pc) const noexcept {
  const std::uint64_t mask = pht_.size() - 1;
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(pc) ^ ghist_) & mask);
}

BranchPrediction BranchPredictor::predict_cond(std::int32_t pc,
                                               std::int32_t target) {
  BranchPrediction p;
  p.taken = pht_[pht_index(pc)] >= 2;
  p.target = target;
  return p;
}

void BranchPredictor::update_cond(std::int32_t pc, bool taken) {
  std::uint8_t& ctr = pht_[pht_index(pc)];
  if (taken) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
  ghist_ = (ghist_ << 1) | (taken ? 1u : 0u);
}

void BranchPredictor::rsb_push(std::int32_t return_pc) {
  rsb_[static_cast<std::size_t>(rsb_top_)] = return_pc;
  rsb_top_ = (rsb_top_ + 1) % cfg_.rsb_entries;
  if (rsb_valid_ < cfg_.rsb_entries) ++rsb_valid_;
}

BranchPrediction BranchPredictor::predict_ret() {
  BranchPrediction p;
  p.from_rsb = true;
  if (!cfg_.rsb_speculates || rsb_valid_ == 0) {
    p.taken = false;  // no prediction: front end stalls until resolution
    p.target = -1;
    return p;
  }
  rsb_top_ = (rsb_top_ + cfg_.rsb_entries - 1) % cfg_.rsb_entries;
  --rsb_valid_;
  p.taken = true;
  p.target = rsb_[static_cast<std::size_t>(rsb_top_)];
  return p;
}

void BranchPredictor::btb_record(std::int32_t pc, std::int32_t target) {
  const auto idx = static_cast<std::size_t>(pc) % btb_.size();
  btb_[idx] = (static_cast<std::int64_t>(pc) << 24) |
              (static_cast<std::int64_t>(target) & 0xffffff);
}

bool BranchPredictor::btb_hit(std::int32_t pc, std::int32_t target) const {
  const auto idx = static_cast<std::size_t>(pc) % btb_.size();
  return btb_[idx] == ((static_cast<std::int64_t>(pc) << 24) |
                       (static_cast<std::int64_t>(target) & 0xffffff));
}

}  // namespace whisper::uarch
