// Branch prediction unit: gshare-style pattern history table for direction,
// a branch target buffer, and the return stack buffer whose misprediction is
// the Spectre-V5 primitive (paper §4.3.3).
//
// Predictor state deliberately persists across transient squashes: direction
// counters are updated at branch *execution* (including transient
// executions) just as on real parts, which is what trains the gadget
// branches strongly not-taken so that the rare secret-matching probe
// mispredicts.
#pragma once

#include <cstdint>
#include <vector>

#include "uarch/config.h"

namespace whisper::uarch {

struct BranchPrediction {
  bool taken = false;
  std::int32_t target = -1;  // predicted instruction index (when taken)
  bool from_rsb = false;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const CpuConfig& cfg);

  /// Predict a conditional branch at `pc` with static target `target`.
  [[nodiscard]] BranchPrediction predict_cond(std::int32_t pc,
                                              std::int32_t target);
  /// Record the actual outcome (called at execution, transient or not).
  /// Returns true if the earlier prediction direction would have been wrong.
  void update_cond(std::int32_t pc, bool taken);

  /// RSB handling. push on call fetch, pop on ret fetch.
  void rsb_push(std::int32_t return_pc);
  [[nodiscard]] BranchPrediction predict_ret();

  /// BTB bookkeeping (used for the AMD bp_l1_btb_correct event).
  void btb_record(std::int32_t pc, std::int32_t target);
  [[nodiscard]] bool btb_hit(std::int32_t pc, std::int32_t target) const;

  void reset();

  [[nodiscard]] int rsb_occupancy() const noexcept { return rsb_valid_; }

 private:
  [[nodiscard]] std::size_t pht_index(std::int32_t pc) const noexcept;

  CpuConfig cfg_;
  std::vector<std::uint8_t> pht_;   // 2-bit saturating counters
  std::uint64_t ghist_ = 0;
  std::vector<std::int64_t> btb_;   // pc -> target (packed), -1 invalid
  std::vector<std::int32_t> rsb_;
  int rsb_top_ = 0;
  int rsb_valid_ = 0;
};

}  // namespace whisper::uarch
