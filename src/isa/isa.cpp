#include "isa/isa.h"

#include <array>
#include <sstream>

namespace whisper::isa {

std::string to_string(Reg r) {
  static constexpr std::array<const char*, kNumRegs> kNames = {
      "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  const auto i = static_cast<std::size_t>(r);
  return i < kNames.size() ? kNames[i] : "r?";
}

std::string to_string(Cond c) {
  switch (c) {
    case Cond::Z:  return "z";
    case Cond::NZ: return "nz";
    case Cond::C:  return "c";
    case Cond::NC: return "nc";
    case Cond::S:  return "s";
    case Cond::NS: return "ns";
    case Cond::O:  return "o";
    case Cond::NO: return "no";
  }
  return "?";
}

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::Nop:       return "nop";
    case Opcode::MovRI:     return "mov";
    case Opcode::MovRR:     return "mov";
    case Opcode::Load:      return "mov(load)";
    case Opcode::LoadByte:  return "movzx(load8)";
    case Opcode::Store:     return "mov(store)";
    case Opcode::StoreByte: return "mov(store8)";
    case Opcode::AddRI:     return "add";
    case Opcode::AddRR:     return "add";
    case Opcode::SubRI:     return "sub";
    case Opcode::SubRR:     return "sub";
    case Opcode::AndRI:     return "and";
    case Opcode::OrRI:      return "or";
    case Opcode::XorRR:     return "xor";
    case Opcode::ShlRI:     return "shl";
    case Opcode::ShrRI:     return "shr";
    case Opcode::ImulRR:    return "imul";
    case Opcode::FdivRR:    return "fdiv";
    case Opcode::Neg:       return "neg";
    case Opcode::Not:       return "not";
    case Opcode::Lea:       return "lea";
    case Opcode::Cmov:      return "cmov";
    case Opcode::CmpRI:     return "cmp";
    case Opcode::CmpRR:     return "cmp";
    case Opcode::TestRR:    return "test";
    case Opcode::Jcc:       return "j";
    case Opcode::Jmp:       return "jmp";
    case Opcode::Call:      return "call";
    case Opcode::Ret:       return "ret";
    case Opcode::Clflush:   return "clflush";
    case Opcode::Prefetch:  return "prefetcht0";
    case Opcode::Mfence:    return "mfence";
    case Opcode::Lfence:    return "lfence";
    case Opcode::AvxOp:     return "vaddps";
    case Opcode::Rdtsc:     return "rdtsc";
    case Opcode::Rdtscp:    return "rdtscp";
    case Opcode::Pause:     return "pause";
    case Opcode::TsxBegin:  return "xbegin";
    case Opcode::TsxEnd:    return "xend";
    case Opcode::Halt:      return "hlt";
  }
  return "?";
}

bool Instruction::writes_flags() const noexcept {
  switch (op) {
    case Opcode::AddRI: case Opcode::AddRR:
    case Opcode::SubRI: case Opcode::SubRR:
    case Opcode::AndRI: case Opcode::OrRI: case Opcode::XorRR:
    case Opcode::ShlRI: case Opcode::ShrRI:
    case Opcode::CmpRI: case Opcode::CmpRR: case Opcode::TestRR:
    case Opcode::ImulRR: case Opcode::FdivRR: case Opcode::Neg:
      return true;
    default:
      return false;
  }
}

int Instruction::uops() const noexcept {
  switch (op) {
    case Opcode::Call:
    case Opcode::Ret:
      return 2;  // branch + stack memory access
    case Opcode::Mfence:
      return 3;  // fence µop + drain bookkeeping, as measured on Intel
    case Opcode::Clflush:
      return 2;
    case Opcode::Rdtsc:
    case Opcode::Rdtscp:
      return 2;
    case Opcode::TsxBegin:
    case Opcode::TsxEnd:
      return 2;
    default:
      return 1;
  }
}

std::string Instruction::to_string() const {
  std::ostringstream s;
  auto mem = [&] {
    std::ostringstream m;
    m << '[' << isa::to_string(base);
    if (disp > 0) m << "+0x" << std::hex << disp;
    if (disp < 0) m << "-0x" << std::hex << -disp;
    m << ']';
    return m.str();
  };
  switch (op) {
    case Opcode::Nop:      s << "nop"; break;
    case Opcode::MovRI:    s << "mov " << isa::to_string(dst) << ", 0x"
                             << std::hex << imm; break;
    case Opcode::MovRR:    s << "mov " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::Load:     s << "mov " << isa::to_string(dst) << ", qword "
                             << mem(); break;
    case Opcode::LoadByte: s << "movzx " << isa::to_string(dst) << ", byte "
                             << mem(); break;
    case Opcode::Store:    s << "mov qword " << mem() << ", "
                             << isa::to_string(src); break;
    case Opcode::StoreByte: s << "mov byte " << mem() << ", "
                              << isa::to_string(src); break;
    case Opcode::AddRI:    s << "add " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::AddRR:    s << "add " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::SubRI:    s << "sub " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::SubRR:    s << "sub " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::AndRI:    s << "and " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::OrRI:     s << "or " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::XorRR:    s << "xor " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::ShlRI:    s << "shl " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::ShrRI:    s << "shr " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::CmpRI:    s << "cmp " << isa::to_string(dst) << ", " << imm;
                           break;
    case Opcode::CmpRR:    s << "cmp " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::TestRR:   s << "test " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::Jcc:      s << 'j' << isa::to_string(cond) << ' ' << target;
                           break;
    case Opcode::Jmp:      s << "jmp " << target; break;
    case Opcode::Call:     s << "call " << target; break;
    case Opcode::Ret:      s << "ret"; break;
    case Opcode::Clflush:  s << "clflush " << mem(); break;
    case Opcode::Prefetch: s << "prefetcht0 " << mem(); break;
    case Opcode::Mfence:   s << "mfence"; break;
    case Opcode::Lfence:   s << "lfence"; break;
    case Opcode::AvxOp:    s << "vaddps ymm0, ymm0, ymm0"; break;
    case Opcode::Rdtsc:    s << "rdtsc -> " << isa::to_string(dst); break;
    case Opcode::Rdtscp:   s << "rdtscp -> " << isa::to_string(dst); break;
    case Opcode::Pause:    s << "pause"; break;
    case Opcode::ImulRR:   s << "imul " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::FdivRR:   s << "fdiv " << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::Neg:      s << "neg " << isa::to_string(dst); break;
    case Opcode::Not:      s << "not " << isa::to_string(dst); break;
    case Opcode::Lea:      s << "lea " << isa::to_string(dst) << ", "
                             << mem(); break;
    case Opcode::Cmov:     s << "cmov" << isa::to_string(cond) << ' '
                             << isa::to_string(dst) << ", "
                             << isa::to_string(src); break;
    case Opcode::TsxBegin: s << "xbegin " << target; break;
    case Opcode::TsxEnd:   s << "xend"; break;
    case Opcode::Halt:     s << "hlt"; break;
  }
  return s.str();
}

}  // namespace whisper::isa
