#include "isa/builder.h"

#include <stdexcept>

namespace whisper::isa {

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (labels_.contains(name))
    throw std::invalid_argument("ProgramBuilder: duplicate label '" + name +
                                "'");
  labels_[name] = here();
  return *this;
}

ProgramBuilder& ProgramBuilder::emit(Instruction in) {
  code_.push_back(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::emit_branch(Instruction in,
                                            const std::string& target) {
  fixups_.emplace_back(code_.size(), target);
  code_.push_back(in);
  return *this;
}

ProgramBuilder& ProgramBuilder::nop(int count) {
  for (int i = 0; i < count; ++i) emit({.op = Opcode::Nop});
  return *this;
}

ProgramBuilder& ProgramBuilder::mov(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::MovRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::mov_label(Reg dst,
                                          const std::string& target) {
  imm_fixups_.emplace_back(code_.size(), target);
  code_.push_back({.op = Opcode::MovRI, .dst = dst});
  return *this;
}
ProgramBuilder& ProgramBuilder::mov(Reg dst, Reg src) {
  return emit({.op = Opcode::MovRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::load(Reg dst, Reg base, std::int64_t disp) {
  return emit({.op = Opcode::Load, .dst = dst, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::load_byte(Reg dst, Reg base,
                                          std::int64_t disp) {
  return emit(
      {.op = Opcode::LoadByte, .dst = dst, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::store(Reg base, Reg src, std::int64_t disp) {
  return emit({.op = Opcode::Store, .src = src, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::store_byte(Reg base, Reg src,
                                           std::int64_t disp) {
  return emit(
      {.op = Opcode::StoreByte, .src = src, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::add(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::AddRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::add(Reg dst, Reg src) {
  return emit({.op = Opcode::AddRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::sub(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::SubRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::sub(Reg dst, Reg src) {
  return emit({.op = Opcode::SubRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::and_(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::AndRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::or_(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::OrRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::xor_(Reg dst, Reg src) {
  return emit({.op = Opcode::XorRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::shl(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::ShlRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::shr(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::ShrRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::imul(Reg dst, Reg src) {
  return emit({.op = Opcode::ImulRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::fdiv(Reg dst, Reg src) {
  return emit({.op = Opcode::FdivRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::neg(Reg dst) {
  return emit({.op = Opcode::Neg, .dst = dst});
}
ProgramBuilder& ProgramBuilder::not_(Reg dst) {
  return emit({.op = Opcode::Not, .dst = dst});
}
ProgramBuilder& ProgramBuilder::lea(Reg dst, Reg base, std::int64_t disp) {
  return emit({.op = Opcode::Lea, .dst = dst, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::cmov(Cond c, Reg dst, Reg src) {
  return emit({.op = Opcode::Cmov, .dst = dst, .src = src, .cond = c});
}
ProgramBuilder& ProgramBuilder::cmp(Reg dst, std::int64_t imm) {
  return emit({.op = Opcode::CmpRI, .dst = dst, .imm = imm});
}
ProgramBuilder& ProgramBuilder::cmp(Reg dst, Reg src) {
  return emit({.op = Opcode::CmpRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::test(Reg dst, Reg src) {
  return emit({.op = Opcode::TestRR, .dst = dst, .src = src});
}
ProgramBuilder& ProgramBuilder::jcc(Cond c, const std::string& target) {
  return emit_branch({.op = Opcode::Jcc, .cond = c}, target);
}
ProgramBuilder& ProgramBuilder::jmp(const std::string& target) {
  return emit_branch({.op = Opcode::Jmp}, target);
}
ProgramBuilder& ProgramBuilder::call(const std::string& target) {
  return emit_branch({.op = Opcode::Call}, target);
}
ProgramBuilder& ProgramBuilder::ret() { return emit({.op = Opcode::Ret}); }
ProgramBuilder& ProgramBuilder::clflush(Reg base, std::int64_t disp) {
  return emit({.op = Opcode::Clflush, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::prefetch(Reg base, std::int64_t disp) {
  return emit({.op = Opcode::Prefetch, .base = base, .disp = disp});
}
ProgramBuilder& ProgramBuilder::mfence() {
  return emit({.op = Opcode::Mfence});
}
ProgramBuilder& ProgramBuilder::lfence() {
  return emit({.op = Opcode::Lfence});
}
ProgramBuilder& ProgramBuilder::avx(Reg dep) {
  // `dep` models a data dependency feeding the vector op (vmovq xmm, dep).
  return emit({.op = Opcode::AvxOp, .src = dep});
}
ProgramBuilder& ProgramBuilder::rdtsc(Reg dst) {
  return emit({.op = Opcode::Rdtsc, .dst = dst});
}
ProgramBuilder& ProgramBuilder::rdtscp(Reg dst) {
  return emit({.op = Opcode::Rdtscp, .dst = dst});
}
ProgramBuilder& ProgramBuilder::pause() {
  return emit({.op = Opcode::Pause});
}
ProgramBuilder& ProgramBuilder::tsx_begin(const std::string& abort_target) {
  return emit_branch({.op = Opcode::TsxBegin}, abort_target);
}
ProgramBuilder& ProgramBuilder::tsx_end() {
  return emit({.op = Opcode::TsxEnd});
}
ProgramBuilder& ProgramBuilder::halt() { return emit({.op = Opcode::Halt}); }

ProgramBuilder& ProgramBuilder::raw(Instruction in) { return emit(in); }

Program ProgramBuilder::build() {
  for (const auto& [index, name] : fixups_) {
    auto it = labels_.find(name);
    if (it == labels_.end())
      throw std::invalid_argument("ProgramBuilder: unresolved label '" + name +
                                  "'");
    code_[index].target = it->second;
  }
  fixups_.clear();
  for (const auto& [index, name] : imm_fixups_) {
    auto it = labels_.find(name);
    if (it == labels_.end())
      throw std::invalid_argument("ProgramBuilder: unresolved label '" + name +
                                  "'");
    code_[index].imm = it->second;
  }
  imm_fixups_.clear();
  return Program(code_, labels_);
}

}  // namespace whisper::isa
