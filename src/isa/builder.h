// Fluent assembler for whisper::isa programs.
//
// Gadgets from the paper translate directly, e.g. the Fig. 1a TET block:
//
//   ProgramBuilder b;
//   b.tsx_begin("abort")
//    .load(Reg::RAX, Reg::RCX)              // *(char*)(0x0)  -- faulting load
//    .cmp(Reg::RBX, 'S')
//    .jcc(Cond::Z, "hit")                   // if (test_value == 'S')
//    .jmp("join")
//    .label("hit").nop()                    //     asm("nop")
//    .label("join").tsx_end()
//    .label("abort").halt();
//   Program p = b.build();
//
// Forward references to labels are recorded as fixups and resolved in
// build(); unresolved references throw.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace whisper::isa {

class ProgramBuilder {
 public:
  ProgramBuilder() = default;

  ProgramBuilder& label(const std::string& name);

  ProgramBuilder& nop(int count = 1);
  ProgramBuilder& mov(Reg dst, std::int64_t imm);
  /// dst <- instruction index of `target` (the `movabs $2f, %rax` of the
  /// paper's Listing 1: a code address materialised as data).
  ProgramBuilder& mov_label(Reg dst, const std::string& target);
  ProgramBuilder& mov(Reg dst, Reg src);
  ProgramBuilder& load(Reg dst, Reg base, std::int64_t disp = 0);
  ProgramBuilder& load_byte(Reg dst, Reg base, std::int64_t disp = 0);
  ProgramBuilder& store(Reg base, Reg src, std::int64_t disp = 0);
  ProgramBuilder& store_byte(Reg base, Reg src, std::int64_t disp = 0);
  ProgramBuilder& add(Reg dst, std::int64_t imm);
  ProgramBuilder& add(Reg dst, Reg src);
  ProgramBuilder& sub(Reg dst, std::int64_t imm);
  ProgramBuilder& sub(Reg dst, Reg src);
  ProgramBuilder& and_(Reg dst, std::int64_t imm);
  ProgramBuilder& or_(Reg dst, std::int64_t imm);
  ProgramBuilder& xor_(Reg dst, Reg src);
  ProgramBuilder& shl(Reg dst, std::int64_t imm);
  ProgramBuilder& shr(Reg dst, std::int64_t imm);
  ProgramBuilder& imul(Reg dst, Reg src);
  ProgramBuilder& fdiv(Reg dst, Reg src);
  ProgramBuilder& neg(Reg dst);
  ProgramBuilder& not_(Reg dst);
  ProgramBuilder& lea(Reg dst, Reg base, std::int64_t disp);
  ProgramBuilder& cmov(Cond c, Reg dst, Reg src);
  ProgramBuilder& cmp(Reg dst, std::int64_t imm);
  ProgramBuilder& cmp(Reg dst, Reg src);
  ProgramBuilder& test(Reg dst, Reg src);
  ProgramBuilder& jcc(Cond c, const std::string& target);
  ProgramBuilder& jmp(const std::string& target);
  ProgramBuilder& call(const std::string& target);
  ProgramBuilder& ret();
  ProgramBuilder& clflush(Reg base, std::int64_t disp = 0);
  ProgramBuilder& prefetch(Reg base, std::int64_t disp = 0);
  ProgramBuilder& mfence();
  ProgramBuilder& lfence();
  ProgramBuilder& avx(Reg dep = Reg::None);
  ProgramBuilder& rdtsc(Reg dst);
  ProgramBuilder& rdtscp(Reg dst);
  ProgramBuilder& pause();
  ProgramBuilder& tsx_begin(const std::string& abort_target);
  ProgramBuilder& tsx_end();
  ProgramBuilder& halt();

  /// Append a raw instruction (targets must already be resolved).
  ProgramBuilder& raw(Instruction in);

  /// Number of instructions emitted so far (== index of the next one).
  [[nodiscard]] int here() const noexcept {
    return static_cast<int>(code_.size());
  }

  /// Resolve all fixups and produce a validated Program.
  /// Throws std::invalid_argument on unresolved labels.
  [[nodiscard]] Program build();

 private:
  ProgramBuilder& emit(Instruction in);
  ProgramBuilder& emit_branch(Instruction in, const std::string& target);

  std::vector<Instruction> code_;
  std::map<std::string, int> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;      // -> target
  std::vector<std::pair<std::size_t, std::string>> imm_fixups_;  // -> imm
};

}  // namespace whisper::isa
