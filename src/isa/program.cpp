#include "isa/program.h"

#include <sstream>
#include <stdexcept>

namespace whisper::isa {

Program::Program(std::vector<Instruction> code,
                 std::map<std::string, int> labels)
    : code_(std::move(code)), labels_(std::move(labels)) {
  validate();
}

int Program::label(const std::string& name) const {
  auto it = labels_.find(name);
  if (it == labels_.end())
    throw std::out_of_range("Program: unknown label '" + name + "'");
  return it->second;
}

bool Program::has_label(const std::string& name) const {
  return labels_.contains(name);
}

void Program::validate() const {
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& in = code_[i];
    const bool needs_target = in.op == Opcode::Jcc || in.op == Opcode::Jmp ||
                              in.op == Opcode::Call ||
                              in.op == Opcode::TsxBegin;
    if (needs_target) {
      if (in.target < 0 ||
          static_cast<std::size_t>(in.target) >= code_.size()) {
        std::ostringstream msg;
        msg << "Program: instruction " << i << " (" << in.to_string()
            << ") has out-of-range target " << in.target;
        throw std::invalid_argument(msg.str());
      }
    }
  }
  for (const auto& [name, idx] : labels_) {
    if (idx < 0 || static_cast<std::size_t>(idx) > code_.size())
      throw std::invalid_argument("Program: label '" + name +
                                  "' is out of range");
  }
}

std::string Program::disassemble() const {
  // Invert the label map for annotation.
  std::map<int, std::vector<std::string>> by_index;
  for (const auto& [name, idx] : labels_) by_index[idx].push_back(name);

  std::ostringstream out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (auto it = by_index.find(static_cast<int>(i)); it != by_index.end())
      for (const auto& name : it->second) out << name << ":\n";
    out << "  " << i << ":\t" << code_[i].to_string() << '\n';
  }
  return out.str();
}

}  // namespace whisper::isa
