#include "isa/program.h"

#include <sstream>
#include <stdexcept>

namespace whisper::isa {

namespace {

std::uint64_t content_fnv1a(const std::vector<Instruction>& code) {
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kBasis;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= kPrime;
    }
  };
  mix(code.size());
  for (const Instruction& in : code) {
    mix(static_cast<std::uint64_t>(in.op) |
        (static_cast<std::uint64_t>(in.dst) << 8) |
        (static_cast<std::uint64_t>(in.src) << 16) |
        (static_cast<std::uint64_t>(in.base) << 24) |
        (static_cast<std::uint64_t>(in.cond) << 32));
    mix(static_cast<std::uint64_t>(in.imm));
    mix(static_cast<std::uint64_t>(in.disp));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.target)));
  }
  return h;
}

}  // namespace

Program::Program(std::vector<Instruction> code,
                 std::map<std::string, int> labels)
    : code_(std::move(code)), labels_(std::move(labels)),
      hash_(content_fnv1a(code_)) {
  validate();
}

int Program::label(const std::string& name) const {
  auto it = labels_.find(name);
  if (it == labels_.end())
    throw std::out_of_range("Program: unknown label '" + name + "'");
  return it->second;
}

bool Program::has_label(const std::string& name) const {
  return labels_.contains(name);
}

void Program::validate() const {
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& in = code_[i];
    const bool needs_target = in.op == Opcode::Jcc || in.op == Opcode::Jmp ||
                              in.op == Opcode::Call ||
                              in.op == Opcode::TsxBegin;
    if (needs_target) {
      if (in.target < 0 ||
          static_cast<std::size_t>(in.target) >= code_.size()) {
        std::ostringstream msg;
        msg << "Program: instruction " << i << " (" << in.to_string()
            << ") has out-of-range target " << in.target;
        throw std::invalid_argument(msg.str());
      }
    }
  }
  for (const auto& [name, idx] : labels_) {
    if (idx < 0 || static_cast<std::size_t>(idx) > code_.size())
      throw std::invalid_argument("Program: label '" + name +
                                  "' is out of range");
  }
}

std::string Program::disassemble() const {
  // Invert the label map for annotation.
  std::map<int, std::vector<std::string>> by_index;
  for (const auto& [name, idx] : labels_) by_index[idx].push_back(name);

  std::ostringstream out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (auto it = by_index.find(static_cast<int>(i)); it != by_index.end())
      for (const auto& name : it->second) out << name << ":\n";
    out << "  " << i << ":\t" << code_[i].to_string() << '\n';
  }
  return out.str();
}

}  // namespace whisper::isa
