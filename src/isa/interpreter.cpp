#include "isa/interpreter.h"

namespace whisper::isa {

namespace {

Flags alu_flags(std::uint64_t result, bool carry, bool overflow) {
  Flags f;
  f.zf = result == 0;
  f.sf = (result >> 63) & 1;
  f.cf = carry;
  f.of = overflow;
  return f;
}

}  // namespace

InterpreterResult interpret(const Program& prog,
                            const std::array<std::uint64_t, kNumRegs>& regs,
                            RefMemory& mem, std::uint64_t max_steps,
                            std::uint64_t fault_below) {
  InterpreterResult r;
  r.regs = regs;

  auto R = [&](Reg reg) -> std::uint64_t& {
    return r.regs[static_cast<std::size_t>(reg)];
  };

  int pc = 0;
  while (r.steps < max_steps) {
    if (pc < 0 || static_cast<std::size_t>(pc) >= prog.size()) {
      r.status = InterpStatus::RanOffEnd;
      return r;
    }
    const Instruction& in = prog.at(static_cast<std::size_t>(pc));
    ++r.steps;
    int next = pc + 1;

    auto addr_of = [&] {
      return R(in.base) + static_cast<std::uint64_t>(in.disp);
    };
    auto check = [&](std::uint64_t a) {
      if (a < fault_below) {
        r.status = InterpStatus::Faulted;
        r.fault_addr = a;
        r.fault_pc = pc;
        return false;
      }
      return true;
    };

    switch (in.op) {
      case Opcode::Nop:
      case Opcode::AvxOp:
      case Opcode::Pause:
      case Opcode::Mfence:
      case Opcode::Lfence:
      case Opcode::Clflush:
      case Opcode::Prefetch:
      case Opcode::TsxBegin:
      case Opcode::TsxEnd:
        break;
      case Opcode::MovRI:
        R(in.dst) = static_cast<std::uint64_t>(in.imm);
        break;
      case Opcode::MovRR:
        R(in.dst) = R(in.src);
        break;
      case Opcode::Load: {
        const std::uint64_t a = addr_of();
        if (!check(a)) return r;
        R(in.dst) = mem.read64(a);
        break;
      }
      case Opcode::LoadByte: {
        const std::uint64_t a = addr_of();
        if (!check(a)) return r;
        R(in.dst) = mem.read8(a);
        break;
      }
      case Opcode::Store: {
        const std::uint64_t a = addr_of();
        if (!check(a)) return r;
        mem.write64(a, R(in.src));
        break;
      }
      case Opcode::StoreByte: {
        const std::uint64_t a = addr_of();
        if (!check(a)) return r;
        mem.write8(a, static_cast<std::uint8_t>(R(in.src)));
        break;
      }
      case Opcode::AddRI: {
        const std::uint64_t a = R(in.dst);
        const std::uint64_t b = static_cast<std::uint64_t>(in.imm);
        const std::uint64_t res = a + b;
        r.flags = alu_flags(res, res < a,
                            ((~(a ^ b) & (a ^ res)) >> 63) != 0);
        R(in.dst) = res;
        break;
      }
      case Opcode::AddRR: {
        const std::uint64_t a = R(in.dst);
        const std::uint64_t b = R(in.src);
        const std::uint64_t res = a + b;
        r.flags = alu_flags(res, res < a,
                            ((~(a ^ b) & (a ^ res)) >> 63) != 0);
        R(in.dst) = res;
        break;
      }
      case Opcode::SubRI:
      case Opcode::CmpRI: {
        const std::uint64_t a = R(in.dst);
        const std::uint64_t b = static_cast<std::uint64_t>(in.imm);
        const std::uint64_t res = a - b;
        r.flags = alu_flags(res, a < b, (((a ^ b) & (a ^ res)) >> 63) != 0);
        if (in.op == Opcode::SubRI) R(in.dst) = res;
        break;
      }
      case Opcode::SubRR:
      case Opcode::CmpRR: {
        const std::uint64_t a = R(in.dst);
        const std::uint64_t b = R(in.src);
        const std::uint64_t res = a - b;
        r.flags = alu_flags(res, a < b, (((a ^ b) & (a ^ res)) >> 63) != 0);
        if (in.op == Opcode::SubRR) R(in.dst) = res;
        break;
      }
      case Opcode::AndRI:
        R(in.dst) &= static_cast<std::uint64_t>(in.imm);
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      case Opcode::OrRI:
        R(in.dst) |= static_cast<std::uint64_t>(in.imm);
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      case Opcode::XorRR:
        R(in.dst) ^= R(in.src);
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      case Opcode::ShlRI:
        R(in.dst) <<= (in.imm & 63);
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      case Opcode::ShrRI:
        R(in.dst) >>= (in.imm & 63);
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      case Opcode::ImulRR:
        R(in.dst) *= R(in.src);
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      case Opcode::FdivRR: {
        const std::uint64_t d = R(in.src);
        R(in.dst) = d == 0 ? ~0ull : R(in.dst) / d;
        r.flags = alu_flags(R(in.dst), false, false);
        break;
      }
      case Opcode::Neg: {
        const std::uint64_t a = R(in.dst);
        R(in.dst) = static_cast<std::uint64_t>(-static_cast<std::int64_t>(a));
        r.flags = alu_flags(R(in.dst), a != 0, false);
        break;
      }
      case Opcode::Not:
        R(in.dst) = ~R(in.dst);
        break;
      case Opcode::Lea:
        R(in.dst) = addr_of();
        break;
      case Opcode::Cmov:
        if (eval_cond(in.cond, r.flags)) R(in.dst) = R(in.src);
        break;
      case Opcode::TestRR: {
        const std::uint64_t res = R(in.dst) & R(in.src);
        r.flags = alu_flags(res, false, false);
        break;
      }
      case Opcode::Jcc:
        if (eval_cond(in.cond, r.flags)) next = in.target;
        break;
      case Opcode::Jmp:
        next = in.target;
        break;
      case Opcode::Call: {
        const std::uint64_t sp = R(Reg::RSP) - 8;
        if (!check(sp)) return r;
        mem.write64(sp, static_cast<std::uint64_t>(pc + 1));
        R(Reg::RSP) = sp;
        next = in.target;
        break;
      }
      case Opcode::Ret: {
        const std::uint64_t sp = R(Reg::RSP);
        if (!check(sp)) return r;
        next = static_cast<int>(mem.read64(sp));
        R(Reg::RSP) = sp + 8;
        break;
      }
      case Opcode::Rdtsc:
      case Opcode::Rdtscp:
        R(in.dst) = r.steps;  // deterministic stand-in for a timestamp
        break;
      case Opcode::Halt:
        r.status = InterpStatus::Halted;
        return r;
    }
    pc = next;
  }
  r.status = InterpStatus::StepLimit;
  return r;
}

}  // namespace whisper::isa
