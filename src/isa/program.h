// A validated, label-resolved instruction sequence.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace whisper::isa {

class Program {
 public:
  Program() = default;
  Program(std::vector<Instruction> code, std::map<std::string, int> labels);

  [[nodiscard]] const std::vector<Instruction>& code() const noexcept {
    return code_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return code_.size(); }
  [[nodiscard]] bool empty() const noexcept { return code_.empty(); }
  [[nodiscard]] const Instruction& at(std::size_t i) const {
    return code_.at(i);
  }

  /// Instruction index of a named label; throws std::out_of_range if absent.
  [[nodiscard]] int label(const std::string& name) const;
  [[nodiscard]] bool has_label(const std::string& name) const;

  /// Multi-line disassembly listing with label annotations.
  [[nodiscard]] std::string disassemble() const;

  /// Verify every branch/TSX target is a valid instruction index.
  /// Throws std::invalid_argument on malformed code.
  void validate() const;

  /// Content identity: FNV-1a over the semantic instruction fields (labels
  /// excluded — they are assembly-time names, not behaviour). Two programs
  /// with equal hashes decode identically, which is what the core's
  /// per-program decode cache keys on across trials that rebuild the same
  /// attack program into fresh Program objects. Computed eagerly at
  /// construction; the default-constructed empty program hashes to 0.
  [[nodiscard]] std::uint64_t content_hash() const noexcept { return hash_; }

 private:
  std::vector<Instruction> code_;
  std::map<std::string, int> labels_;
  std::uint64_t hash_ = 0;
};

}  // namespace whisper::isa
