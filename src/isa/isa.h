// Core ISA definitions for the x86-flavoured instruction set executed by the
// whisper::uarch pipeline model.
//
// The ISA is deliberately compact: it contains exactly the instructions the
// paper's gadgets need (Fig. 1a, Listing 1, Listing 2) plus enough ALU /
// control-flow support to write realistic victims, covert channels and
// benchmark kernels. Code addresses are instruction indices; the process
// layer maps them onto virtual code addresses for i-cache/ITLB purposes.
#pragma once

#include <cstdint>
#include <string>

namespace whisper::isa {

/// General-purpose registers (64-bit).
enum class Reg : std::uint8_t {
  RAX, RBX, RCX, RDX, RSI, RDI, RBP, RSP,
  R8, R9, R10, R11, R12, R13, R14, R15,
  Count,
  None = 0xff,
};

inline constexpr std::size_t kNumRegs =
    static_cast<std::size_t>(Reg::Count);

[[nodiscard]] std::string to_string(Reg r);

/// Condition codes for Jcc. The paper verified JE/JZ, JNE/JNZ and JC
/// (section 1); the full set is provided since "all conditional jump
/// instructions of x86 chips could be exploited".
enum class Cond : std::uint8_t { Z, NZ, C, NC, S, NS, O, NO };

[[nodiscard]] std::string to_string(Cond c);

/// Architectural flags produced by ALU/compare instructions.
struct Flags {
  bool zf = false;
  bool cf = false;
  bool sf = false;
  bool of = false;

  friend bool operator==(const Flags&, const Flags&) = default;
};

/// Evaluate a condition code against a flags value.
[[nodiscard]] constexpr bool eval_cond(Cond c, const Flags& f) noexcept {
  switch (c) {
    case Cond::Z:  return f.zf;
    case Cond::NZ: return !f.zf;
    case Cond::C:  return f.cf;
    case Cond::NC: return !f.cf;
    case Cond::S:  return f.sf;
    case Cond::NS: return !f.sf;
    case Cond::O:  return f.of;
    case Cond::NO: return !f.of;
  }
  return false;
}

enum class Opcode : std::uint8_t {
  Nop,
  MovRI,     // dst <- imm
  MovRR,     // dst <- src
  Load,      // dst <- mem64[base + disp]
  LoadByte,  // dst <- zext mem8[base + disp]
  Store,     // mem64[base + disp] <- src
  StoreByte, // mem8[base + disp] <- src (low byte)
  AddRI, AddRR,
  SubRI, SubRR,
  AndRI, OrRI, XorRR,
  ShlRI, ShrRI,
  ImulRR,    // dst <- dst * src (3-cycle latency)
  FdivRR,    // dst <- dst / src (0 divisor yields all-ones). Executes on the
             // single non-pipelined divider: a second divide cannot issue
             // until the first vacates the unit — the SpectreRewind
             // contention channel's substrate. Divisors of 0/1 early-exit
             // with a short latency (no quotient iterations), which is what
             // makes the occupancy data-dependent.
  Neg,       // dst <- -dst
  Not,       // dst <- ~dst (flags unchanged)
  Lea,       // dst <- base + disp (address generation, no memory access)
  Cmov,      // dst <- cond ? src : dst — the branchless data move that
             // defeats the TET channel (no Jcc, no resteer)
  CmpRI,     // flags <- dst - imm
  CmpRR,     // flags <- dst - src
  TestRR,    // flags <- dst & src
  Jcc,       // conditional jump to `target` when cond holds
  Jmp,       // unconditional jump to `target`
  Call,      // push return index onto stack memory, jump to `target`
  Ret,       // pop return index from stack memory, jump to it
  Clflush,   // flush cache line containing [base + disp]
  Prefetch,  // software prefetch of [base + disp]; never faults
  Mfence,    // full fence: drains older loads+stores before younger issue
  Lfence,    // dispatch-serialising fence (as on Intel)
  AvxOp,     // 256-bit vector op: needs the AVX unit powered up — its
             // warm-up latency is the AVX-timing side channel's probe
  Rdtsc,     // dst <- current core cycle
  Rdtscp,    // dst <- core cycle, ordered after all older instructions
  Pause,     // spin-wait hint (longer nop)
  TsxBegin,  // begin transactional region; `target` is the abort handler
  TsxEnd,    // commit transactional region
  Halt,      // terminate the hardware thread
};

[[nodiscard]] std::string to_string(Opcode op);

/// One decoded instruction.
struct Instruction {
  Opcode op = Opcode::Nop;
  Reg dst = Reg::None;
  Reg src = Reg::None;
  Reg base = Reg::None;    // base register for memory operands
  std::int64_t imm = 0;    // immediate operand
  std::int64_t disp = 0;   // memory displacement
  Cond cond = Cond::Z;
  std::int32_t target = -1;  // branch target: instruction index

  [[nodiscard]] bool is_branch() const noexcept {
    return op == Opcode::Jcc || op == Opcode::Jmp || op == Opcode::Call ||
           op == Opcode::Ret;
  }
  [[nodiscard]] bool is_cond_branch() const noexcept {
    return op == Opcode::Jcc;
  }
  [[nodiscard]] bool is_load() const noexcept {
    return op == Opcode::Load || op == Opcode::LoadByte || op == Opcode::Ret;
  }
  [[nodiscard]] bool is_store() const noexcept {
    return op == Opcode::Store || op == Opcode::StoreByte ||
           op == Opcode::Call;
  }
  [[nodiscard]] bool is_mem() const noexcept {
    return is_load() || is_store() || op == Opcode::Clflush ||
           op == Opcode::Prefetch;
  }
  [[nodiscard]] bool is_fence() const noexcept {
    return op == Opcode::Mfence || op == Opcode::Lfence;
  }
  [[nodiscard]] bool writes_flags() const noexcept;
  [[nodiscard]] bool reads_flags() const noexcept {
    return op == Opcode::Jcc || op == Opcode::Cmov;
  }
  /// Micro-op expansion count charged to IDQ/issue bandwidth.
  [[nodiscard]] int uops() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace whisper::isa
