// Reference interpreter: sequential, architectural-only execution of a
// Program. No pipeline, no timing, no speculation — just the ISA contract.
//
// Primary use: differential testing. Whatever the out-of-order core commits
// must equal what this interpreter computes (tests/test_differential.cpp
// feeds both engines generated programs). It is also handy for users
// debugging gadget logic without microarchitectural noise.
//
// Scope: the deterministic subset. RDTSC/RDTSCP return a step counter;
// faulting accesses terminate execution (reported, not suppressed); TSX
// regions commit unless a fault occurs inside.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "isa/isa.h"
#include "isa/program.h"

namespace whisper::isa {

/// Flat byte-addressable memory for reference execution.
class RefMemory {
 public:
  [[nodiscard]] std::uint8_t read8(std::uint64_t addr) const {
    auto it = bytes_.find(addr);
    return it == bytes_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t read64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) | read8(addr + static_cast<std::uint64_t>(i));
    return v;
  }
  void write8(std::uint64_t addr, std::uint8_t value) {
    bytes_[addr] = value;
  }
  void write64(std::uint64_t addr, std::uint64_t value) {
    for (int i = 0; i < 8; ++i)
      write8(addr + static_cast<std::uint64_t>(i),
             static_cast<std::uint8_t>(value >> (8 * i)));
  }
  [[nodiscard]] std::size_t touched_bytes() const noexcept {
    return bytes_.size();
  }
  /// Visit all written bytes (for state comparison).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [a, v] : bytes_) fn(a, v);
  }

 private:
  std::unordered_map<std::uint64_t, std::uint8_t> bytes_;
};

enum class InterpStatus : std::uint8_t {
  Halted,       // executed a Halt
  RanOffEnd,    // fell past the last instruction
  StepLimit,    // max_steps exceeded (non-terminating program?)
  Faulted,      // TSX-less memory fault (address recorded)
};

struct InterpreterResult {
  InterpStatus status = InterpStatus::Halted;
  std::array<std::uint64_t, kNumRegs> regs{};
  Flags flags;
  std::uint64_t steps = 0;        // instructions executed
  std::uint64_t fault_addr = 0;   // valid when status == Faulted
  int fault_pc = -1;
};

/// Execute `prog` sequentially against `mem`. Addresses are used as-is
/// (no translation); a fault can be injected by marking address ranges
/// invalid via `fault_below` (every access < fault_below faults — enough to
/// model the null-page gadget openers).
InterpreterResult interpret(const Program& prog,
                            const std::array<std::uint64_t, kNumRegs>& regs,
                            RefMemory& mem,
                            std::uint64_t max_steps = 100'000,
                            std::uint64_t fault_below = 0);

}  // namespace whisper::isa
