#include "defense/defense.h"

#include <stdexcept>

#include "uarch/config.h"

namespace whisper::defense {

namespace {

bool valid_word(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

[[noreturn]] void bad_spec(std::string_view text, const char* why) {
  throw std::invalid_argument("defense: cannot parse '" + std::string(text) +
                              "': " + why +
                              " (grammar: name[:key=value]...)");
}

/// The uarch hook point: materialize the config override from the model
/// preset on first touch. Content-identical to the preset the Machine
/// constructor would derive itself, so touching only kernel bits keeps the
/// machine byte-identical to the pre-defense-API spelling.
uarch::CpuConfig& config_of(os::MachineOptions& mo) {
  if (!mo.config) mo.config = uarch::make_config(mo.model);
  return *mo.config;
}

const DefenseInfo& info_or_throw(const std::string& name) {
  const DefenseInfo* info = find_defense(name);
  if (info == nullptr) {
    std::string msg = "defense: unknown defense '" + name + "' (registered: ";
    const std::vector<std::string> names = defense_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) msg += ", ";
      msg += names[i];
    }
    throw std::invalid_argument(msg + ")");
  }
  return *info;
}

/// Integer parameter with registry default and a closed range; anything
/// else throws with the defense and key named.
int int_param(const DefenseSpec& spec, const DefenseInfo& info,
              std::string_view key, int lo, int hi) {
  const std::string* text = spec.param(key);
  if (text == nullptr) {
    for (const DefenseParamInfo& p : info.params)
      if (p.name == key) text = &p.default_value;
  }
  int value = 0;
  bool ok = text != nullptr && !text->empty();
  if (ok) {
    for (const char c : *text) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      value = value * 10 + (c - '0');
      if (value > hi) break;
    }
  }
  if (!ok || value < lo || value > hi)
    throw std::invalid_argument(
        "defense: " + info.name + " parameter '" + std::string(key) +
        "' must be an integer in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "], got '" + (text ? *text : "") + "'");
  return value;
}

// --- The registered hooks ------------------------------------------------

void apply_kpti(const DefenseSpec&, os::MachineOptions& mo) {
  mo.kernel.kpti = true;
}

void apply_flare(const DefenseSpec&, os::MachineOptions& mo) {
  mo.kernel.flare = true;
}

void apply_fgkaslr(const DefenseSpec&, os::MachineOptions& mo) {
  mo.kernel.fgkaslr = true;
}

void apply_lfence(const DefenseSpec&, os::MachineOptions& mo) {
  config_of(mo).lfence_after_branch = true;
}

void apply_window(const DefenseSpec& spec, os::MachineOptions& mo) {
  config_of(mo).speculation_window_limit =
      int_param(spec, info_or_throw("window"), "depth", 1, 1 << 20);
}

void apply_retpoline(const DefenseSpec&, os::MachineOptions& mo) {
  // BranchPredictor::predict_ret() already yields no prediction (front end
  // stalls until the ret resolves) when the RSB may not speculate — exactly
  // the retpoline contract, so the defense is one knob.
  config_of(mo).rsb_speculates = false;
}

void apply_flushclear(const DefenseSpec& spec, os::MachineOptions& mo) {
  uarch::CpuConfig& cfg = config_of(mo);
  cfg.flush_on_clear = true;
  cfg.flush_on_clear_levels =
      int_param(spec, info_or_throw("flushclear"), "levels", 1, 3);
}

}  // namespace

const std::string* DefenseSpec::param(std::string_view key) const {
  for (const auto& [k, v] : params)
    if (k == key) return &v;
  return nullptr;
}

DefenseSpec parse(std::string_view text) {
  DefenseSpec out;
  std::size_t pos = text.find(':');
  const std::string_view name = text.substr(0, pos);
  if (!valid_word(name)) bad_spec(text, "bad defense name");
  out.name = std::string(name);
  while (pos != std::string_view::npos) {
    const std::size_t start = pos + 1;
    pos = text.find(':', start);
    const std::string_view kv = text.substr(
        start, pos == std::string_view::npos ? pos : pos - start);
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) bad_spec(text, "parameter without '='");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view value = kv.substr(eq + 1);
    if (!valid_word(key)) bad_spec(text, "bad parameter key");
    if (!valid_word(value)) bad_spec(text, "bad parameter value");
    out.params.emplace_back(std::string(key), std::string(value));
  }
  return out;
}

std::string format(const DefenseSpec& spec) {
  std::string out = spec.name;
  for (const auto& [k, v] : spec.params) {
    out += ':';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::vector<DefenseSpec> parse_list(std::string_view text) {
  std::vector<DefenseSpec> out;
  if (text.empty() || text == "none") return out;
  std::size_t start = 0;
  while (true) {
    const std::size_t plus = text.find('+', start);
    out.push_back(parse(text.substr(
        start, plus == std::string_view::npos ? plus : plus - start)));
    if (plus == std::string_view::npos) break;
    start = plus + 1;
  }
  return out;
}

std::string format_list(const std::vector<DefenseSpec>& specs) {
  if (specs.empty()) return "none";
  std::string out;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i) out += '+';
    out += format(specs[i]);
  }
  return out;
}

std::uint64_t hash_list(const std::vector<DefenseSpec>& specs) {
  // FNV-1a over the canonical combo string: one hash path, derived from the
  // one format path.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : format_list(specs)) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

const std::vector<DefenseInfo>& registry() {
  // check_docs.sh (check 10) greps the name strings out of this table and
  // requires each in docs/REPRODUCING.md and docs/ARCHITECTURE.md.
  static const std::vector<DefenseInfo> kRegistry = {
      {"kpti",
       "kernel page-table isolation: user view keeps only the trampoline "
       "mapped (paper section 6.2)",
       {},
       apply_kpti},
      {"flare",
       "dummy mappings over the unmapped kernel gaps so mapped and unmapped "
       "probes fault alike",
       {},
       apply_flare},
      {"fgkaslr",
       "function-grained KASLR: shuffle offsets inside the kernel image at "
       "boot",
       {},
       apply_fgkaslr},
      {"lfence",
       "compiler serialization: dispatch stalls after every unresolved "
       "conditional branch, as if an LFENCE followed each Jcc",
       {},
       apply_lfence},
      {"window",
       "speculation-window narrowing: clamp how many uops may allocate past "
       "the oldest unresolved branch/fault",
       {{"depth", "8", "max uops allocated past an unresolved opener"}},
       apply_window},
      {"retpoline",
       "retpoline-style RSB hygiene: returns never speculate from the RSB; "
       "the front end waits for the real target",
       {},
       apply_retpoline},
      {"flushclear",
       "flush-on-clear: every machine clear also flushes the caches and "
       "drains the line-fill buffer",
       {{"levels", "1", "cache levels flushed on each clear (1-3)"}},
       apply_flushclear},
  };
  return kRegistry;
}

const DefenseInfo* find_defense(std::string_view name) {
  for (const DefenseInfo& d : registry())
    if (d.name == name) return &d;
  return nullptr;
}

std::vector<std::string> defense_names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const DefenseInfo& d : registry()) out.push_back(d.name);
  return out;
}

void validate(const std::vector<DefenseSpec>& specs) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DefenseInfo& info = info_or_throw(specs[i].name);
    for (std::size_t j = 0; j < i; ++j)
      if (specs[j].name == specs[i].name)
        throw std::invalid_argument("defense: duplicate defense '" +
                                    specs[i].name + "' in stack");
    for (const auto& [key, value] : specs[i].params) {
      (void)value;
      bool known = false;
      for (const DefenseParamInfo& p : info.params) known |= p.name == key;
      if (!known)
        throw std::invalid_argument("defense: " + info.name +
                                    " has no parameter '" + key + "'");
    }
    // Exercise the hook against scratch options so malformed parameter
    // values fail here, before any machine is built.
    os::MachineOptions scratch;
    info.apply(specs[i], scratch);
  }
}

void apply(const std::vector<DefenseSpec>& specs, os::MachineOptions& mo) {
  validate(specs);
  for (const DefenseSpec& spec : specs) find_defense(spec.name)->apply(spec, mo);
}

}  // namespace whisper::defense
