// whisper::defense — the composable defense registry.
//
// A defense is a named, parameterizable countermeasure that installs hooks
// into a machine before construction: a KernelOptions rewrite (KPTI, FLARE,
// FGKASLR) or a uarch speculation knob (LFENCE insertion, transient-window
// clamping, retpoline, flush-on-clear). Defenses are named, not enumerated —
// `defense::registry()` mirrors `core::attack_registry()`, so a defense
// registered here is immediately reachable from the CLI (`--defense`), the
// serve wire (`"defenses"` run field, `list` response), the JSON trajectory
// writer and the machine-pool key, all through the single
// parse()/format()/hash_list() path below.
//
//   runner::RunSpec spec{.attack = "kaslr"};
//   spec.defenses.push_back(defense::parse("kpti"));
//   spec.defenses.push_back(defense::parse("window:depth=8"));
//
// The textual grammar is `name[:key=value]...` for one defense and
// `spec[+spec]...` for a combo ("kpti+window:depth=8"). format() is the
// canonical spelling: defaults are preserved as written, so parse(format(s))
// == s and format(parse(t)) == t for canonical t — the round-trip the wire
// and the pool key rely on (tests/test_defense.cpp pins both directions).
//
// Every defense applies at machine-construction time only (options rewrite,
// never a mutation of a live machine), so snapshot()/reset() and
// fast-forward identity — invariants 8 and 10 — hold with any defense stack
// active.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "os/machine.h"

namespace whisper::defense {

/// One requested defense: a registry name plus ordered key=value parameters.
/// The canonical text form is format(); equality is field-wise.
struct DefenseSpec {
  std::string name;
  /// Ordered (key, value) pairs, exactly as parsed. Order is preserved so
  /// format() reproduces the input byte-for-byte.
  std::vector<std::pair<std::string, std::string>> params;

  /// The value of `key`, or nullptr when absent.
  [[nodiscard]] const std::string* param(std::string_view key) const;

  friend bool operator==(const DefenseSpec&, const DefenseSpec&) = default;
};

/// Parse one defense spec: `name[:key=value]...` ("kpti",
/// "window:depth=8"). Grammar errors throw std::invalid_argument; the name
/// is NOT checked against the registry here (validate() does that), so the
/// wire can parse before the registry decides.
[[nodiscard]] DefenseSpec parse(std::string_view text);

/// Canonical text form, the exact inverse of parse().
[[nodiscard]] std::string format(const DefenseSpec& spec);

/// Parse a '+'-joined combo ("kpti+window:depth=8"). "" and "none" both
/// mean the empty list.
[[nodiscard]] std::vector<DefenseSpec> parse_list(std::string_view text);

/// '+'-joined canonical combo; "none" for the empty list. This string is
/// the defense fragment of the machine-pool key (runner/machine_pool.cpp)
/// and the cell key of bench/defense_matrix.
[[nodiscard]] std::string format_list(const std::vector<DefenseSpec>& specs);

/// FNV-1a of format_list(): one stable hash for caches keyed on a defense
/// stack.
[[nodiscard]] std::uint64_t hash_list(const std::vector<DefenseSpec>& specs);

/// One declared parameter of a registered defense.
struct DefenseParamInfo {
  std::string name;
  std::string default_value;
  std::string description;
};

/// One registered defense: name, docs, declared parameters, and the hook
/// that installs it into a machine's construction options.
struct DefenseInfo {
  std::string name;
  std::string description;
  std::vector<DefenseParamInfo> params;
  /// Rewrite `mo` (KernelOptions bits and/or the uarch config override) so
  /// the constructed machine runs under this defense. Unknown parameter
  /// keys or unparsable values throw std::invalid_argument.
  void (*apply)(const DefenseSpec& spec, os::MachineOptions& mo);
};

/// All registered defenses, in registration order (the `list` verb and the
/// matrix column order).
[[nodiscard]] const std::vector<DefenseInfo>& registry();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const DefenseInfo* find_defense(std::string_view name);

/// Registry names, in registration order.
[[nodiscard]] std::vector<std::string> defense_names();

/// Check a defense stack without a machine: unknown names (the message
/// lists the registered keys, mirroring runner's unknown-attack contract),
/// duplicate names, unknown parameter keys and malformed values all throw
/// std::invalid_argument.
void validate(const std::vector<DefenseSpec>& specs);

/// validate() + install every defense into `mo`, in list order. uarch
/// defenses materialize mo.config from the model preset on first touch, so
/// an empty stack leaves mo byte-identical to untouched options.
void apply(const std::vector<DefenseSpec>& specs, os::MachineOptions& mo);

}  // namespace whisper::defense
