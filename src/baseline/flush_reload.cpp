#include "baseline/flush_reload.h"

#include <algorithm>

using whisper::isa::Cond;
using whisper::isa::ProgramBuilder;
using whisper::isa::Reg;

namespace whisper::baseline {

namespace {

isa::Program make_flush_loop() {
  ProgramBuilder b;
  // RDI = array base: clflush all 256 lines.
  b.mov(Reg::R12, 0);
  b.label("loop");
  b.mov(Reg::R13, Reg::R12);
  b.shl(Reg::R13, 6);
  b.add(Reg::R13, Reg::RDI);
  b.clflush(Reg::R13);
  b.add(Reg::R12, 1);
  b.cmp(Reg::R12, 256);
  b.jcc(Cond::NZ, "loop");
  b.mfence();
  b.halt();
  return b.build();
}

isa::Program make_touch() {
  ProgramBuilder b;
  // RDI = array base, RBX = byte to encode.
  b.mov(Reg::R13, Reg::RBX);
  b.shl(Reg::R13, 6);
  b.add(Reg::R13, Reg::RDI);
  b.load_byte(Reg::R10, Reg::R13);
  b.halt();
  return b.build();
}

}  // namespace

FlushReloadChannel::FlushReloadChannel(os::Machine& m)
    : m_(m), reload_(core::make_fr_reload_sweep()), flush_(make_flush_loop()),
      touch_(make_touch()) {}

void FlushReloadChannel::flush_array() {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RDI)] = kProbeArrayBase;
  (void)m_.run_user(flush_, regs, -1, 100'000);
}

void FlushReloadChannel::send_byte(std::uint8_t byte) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RDI)] = kProbeArrayBase;
  regs[static_cast<std::size_t>(Reg::RBX)] = byte;
  (void)m_.run_user(touch_, regs, -1, 10'000);
}

std::vector<std::uint64_t> FlushReloadChannel::last_latencies() const {
  std::vector<std::uint64_t> lat(256);
  for (std::size_t i = 0; i < 256; ++i)
    lat[i] = m_.peek64(kReloadBufBase + i * 8);
  return lat;
}

int FlushReloadChannel::receive_byte() {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RDI)] = kProbeArrayBase;
  regs[static_cast<std::size_t>(Reg::RSI)] = kReloadBufBase;
  (void)m_.run_user(reload_, regs, -1, 500'000);

  const std::vector<std::uint64_t> lat = last_latencies();
  const auto min_it = std::min_element(lat.begin(), lat.end());
  const auto max_it = std::max_element(lat.begin(), lat.end());
  // A hit must stand out against the flushed lines.
  if (*max_it < *min_it + 30) return -1;
  return static_cast<int>(min_it - lat.begin());
}

stats::ChannelReport FlushReloadChannel::transmit(
    std::span<const std::uint8_t> bytes) {
  const std::uint64_t start = m_.core().cycle();
  std::vector<std::uint8_t> received;
  received.reserve(bytes.size());
  for (std::uint8_t b : bytes) {
    flush_array();
    m_.advance_time(
        static_cast<std::uint64_t>(m_.config().channel_sync_cycles));
    send_byte(b);
    const int got = receive_byte();
    received.push_back(got < 0 ? 0 : static_cast<std::uint8_t>(got));
  }
  return stats::evaluate_channel(bytes, received,
                                 m_.core().cycle() - start,
                                 m_.config().ghz);
}

MeltdownFlushReload::MeltdownFlushReload(os::Machine& m, Options opt)
    : m_(m), channel_(m),
      gadget_(core::make_meltdown_fr_gadget(
          opt.window.value_or(core::preferred_window(m.config())))) {}

std::uint8_t MeltdownFlushReload::leak_byte(std::uint64_t kvaddr) {
  const std::uint64_t start = m_.core().cycle();
  channel_.flush_array();

  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = kvaddr;
  regs[static_cast<std::size_t>(Reg::RDI)] = kProbeArrayBase;
  (void)m_.run_user(gadget_.prog, regs, gadget_.signal_handler, 100'000);

  const int got = channel_.receive_byte();
  cycles_ += m_.core().cycle() - start;
  return got < 0 ? 0 : static_cast<std::uint8_t>(got);
}

std::vector<std::uint8_t> MeltdownFlushReload::leak(std::uint64_t kvaddr,
                                                    std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(leak_byte(kvaddr + i));
  return out;
}

}  // namespace whisper::baseline
