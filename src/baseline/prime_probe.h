// Prime+Probe — the second classic *stateful* cache channel (Table 1's
// cache column), included alongside Flush+Reload to position TET against
// contention-style cache attacks that need no shared memory and no CLFLUSH.
//
// The receiver primes every way of a target L1 set with its own lines; the
// sender encodes a symbol by touching a line congruent to one set, evicting
// one of the receiver's ways; the receiver times a re-probe of each set and
// reads the symbol from the slow set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/program.h"
#include "os/machine.h"
#include "stats/error_rate.h"

namespace whisper::baseline {

class PrimeProbeChannel {
 public:
  /// One symbol = one of kSymbolSets L1 sets; a byte travels as two
  /// nibbles. Sets are spaced kSetStride apart to keep neighbours quiet.
  static constexpr int kSymbolSets = 16;
  static constexpr int kSetStride = 4;

  explicit PrimeProbeChannel(os::Machine& m);

  [[nodiscard]] stats::ChannelReport transmit(
      std::span<const std::uint8_t> bytes);

  /// Prime all monitored sets (receiver step 1).
  void prime();
  /// Sender: touch the line congruent to symbol `s` (0..kSymbolSets-1).
  void send_symbol(int s);
  /// Receiver: probe all monitored sets, return the symbol whose set
  /// probed slowest (-1 if no set stands out).
  [[nodiscard]] int receive_symbol();

  /// Per-set probe latencies from the last receive (for tests/plots).
  [[nodiscard]] std::vector<std::uint64_t> last_latencies() const;

 private:
  os::Machine& m_;
  isa::Program prime_;
  isa::Program probe_;
  isa::Program touch_;
};

}  // namespace whisper::baseline
