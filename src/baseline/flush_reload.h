// Flush+Reload (Yarom & Falkner) — the canonical *stateful* cache channel
// the paper compares against (Table 1). Used both as a standalone covert
// channel and as the transmission stage of the classic Meltdown baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/gadgets.h"
#include "os/machine.h"
#include "stats/error_rate.h"

namespace whisper::baseline {

/// 256 cache lines at the probe-array base encode one byte.
inline constexpr std::uint64_t kProbeArrayBase = os::Machine::kDataBase;
inline constexpr std::uint64_t kReloadBufBase =
    os::Machine::kDataBase + 0x8000;

class FlushReloadChannel {
 public:
  explicit FlushReloadChannel(os::Machine& m);

  /// Transmit bytes sender→receiver through the cache.
  [[nodiscard]] stats::ChannelReport transmit(
      std::span<const std::uint8_t> bytes);

  /// Flush all 256 probe lines (the state-initialisation step).
  void flush_array();
  /// Sender: touch probe line `byte`.
  void send_byte(std::uint8_t byte);
  /// Receiver: reload-sweep all lines and return the argmin-latency index,
  /// or -1 if no line was measurably hot.
  [[nodiscard]] int receive_byte();

  /// Reload latencies of all 256 lines from the last sweep.
  [[nodiscard]] std::vector<std::uint64_t> last_latencies() const;

 private:
  os::Machine& m_;
  isa::Program reload_;
  isa::Program flush_;
  isa::Program touch_;
};

/// Classic Meltdown with Flush+Reload transmission — TET-MD's baseline.
class MeltdownFlushReload {
 public:
  struct Options {
    std::optional<core::WindowKind> window;
  };

  explicit MeltdownFlushReload(os::Machine& m) : MeltdownFlushReload(m, Options{}) {}
  MeltdownFlushReload(os::Machine& m, Options opt);

  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t kvaddr);
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t kvaddr,
                                               std::size_t len);
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

 private:
  os::Machine& m_;
  FlushReloadChannel channel_;
  core::GadgetProgram gadget_;
  std::uint64_t cycles_ = 0;
};

}  // namespace whisper::baseline
