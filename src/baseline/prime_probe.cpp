#include "baseline/prime_probe.h"

#include <algorithm>

using whisper::isa::ProgramBuilder;
using whisper::isa::Reg;

namespace whisper::baseline {

namespace {

// Receiver's prime buffer: one page per L1 way — line `set*64` of each page
// lands in L1 set `set`. Placed past the Spectre-V1 victim data.
constexpr std::uint64_t kPrimeBase = os::Machine::kDataBase + 0x18000;
// Sender's congruent lines live in the shared region (same page-offset
// bits => same L1 set).
constexpr std::uint64_t kSenderBase = os::Machine::kSharedBase + 0x4000;
// Probe latencies output buffer.
constexpr std::uint64_t kLatBase = os::Machine::kDataBase + 0xe000;

constexpr int kWays = 8;  // L1 associativity in every model preset

}  // namespace

PrimeProbeChannel::PrimeProbeChannel(os::Machine& m) : m_(m) {
  // Build the three programs without arithmetic gymnastics: unrolled loads.
  {
    ProgramBuilder b;
    b.mov(Reg::R14, static_cast<std::int64_t>(kPrimeBase));
    for (int way = 0; way < kWays; ++way) {
      for (int s = 0; s < kSymbolSets; ++s) {
        const std::int64_t disp =
            static_cast<std::int64_t>(way) * 4096 +
            static_cast<std::int64_t>(s) * kSetStride * 64;
        b.load_byte(Reg::R10, Reg::R14, disp);
      }
    }
    b.mfence().halt();
    prime_ = b.build();
  }
  {
    // Probe: for each symbol set, time kWays loads; store the delta.
    ProgramBuilder b;
    b.mov(Reg::R14, static_cast<std::int64_t>(kPrimeBase));
    b.mov(Reg::R13, static_cast<std::int64_t>(kLatBase));
    for (int s = 0; s < kSymbolSets; ++s) {
      b.lfence().rdtsc(Reg::R8).lfence();
      for (int way = 0; way < kWays; ++way) {
        const std::int64_t disp =
            static_cast<std::int64_t>(way) * 4096 +
            static_cast<std::int64_t>(s) * kSetStride * 64;
        b.load_byte(Reg::R10, Reg::R14, disp);
      }
      b.lfence().rdtsc(Reg::R9);
      b.sub(Reg::R9, Reg::R8);
      b.store(Reg::R13, Reg::R9, s * 8);
    }
    b.halt();
    probe_ = b.build();
  }
  {
    // Sender: RBX = symbol; touch the congruent line. Computed address:
    // kSenderBase + RBX*stride*64.
    ProgramBuilder b;
    b.mov(Reg::R13, Reg::RBX);
    b.shl(Reg::R13, 8);  // * 256 == kSetStride(4) * 64
    b.add(Reg::R13, static_cast<std::int64_t>(kSenderBase));
    b.load_byte(Reg::R10, Reg::R13);
    b.halt();
    touch_ = b.build();
  }
  static_assert(kSetStride * 64 == 256, "sender shift must match stride");
}

void PrimeProbeChannel::prime() {
  (void)m_.run_user(prime_, {}, -1, 200'000);
}

void PrimeProbeChannel::send_symbol(int s) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RBX)] =
      static_cast<std::uint64_t>(s % kSymbolSets);
  (void)m_.run_user(touch_, regs, -1, 50'000);
}

std::vector<std::uint64_t> PrimeProbeChannel::last_latencies() const {
  std::vector<std::uint64_t> lat(kSymbolSets);
  for (int s = 0; s < kSymbolSets; ++s)
    lat[static_cast<std::size_t>(s)] =
        m_.peek64(kLatBase + static_cast<std::uint64_t>(s) * 8);
  return lat;
}

int PrimeProbeChannel::receive_symbol() {
  (void)m_.run_user(probe_, {}, -1, 500'000);
  const auto lat = last_latencies();
  const auto max_it = std::max_element(lat.begin(), lat.end());
  const auto min_it = std::min_element(lat.begin(), lat.end());
  if (*max_it < *min_it + 4) return -1;  // nothing evicted
  return static_cast<int>(max_it - lat.begin());
}

stats::ChannelReport PrimeProbeChannel::transmit(
    std::span<const std::uint8_t> bytes) {
  const std::uint64_t start = m_.core().cycle();
  std::vector<std::uint8_t> received;
  received.reserve(bytes.size());
  for (std::uint8_t b : bytes) {
    int nibbles[2] = {b >> 4, b & 0xf};
    int got[2];
    for (int i = 0; i < 2; ++i) {
      prime();
      m_.advance_time(
          static_cast<std::uint64_t>(m_.config().channel_sync_cycles) / 4);
      send_symbol(nibbles[i]);
      const int sym = receive_symbol();
      got[i] = sym < 0 ? 0 : sym;
    }
    received.push_back(static_cast<std::uint8_t>((got[0] << 4) | got[1]));
  }
  return stats::evaluate_channel(bytes, received,
                                 m_.core().cycle() - start, m_.config().ghz);
}

}  // namespace whisper::baseline
