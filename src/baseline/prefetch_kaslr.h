// EntryBleed-style prefetch-timing KASLR probe — the instruction-specific
// baseline the paper positions TET-KASLR against (§2.1, §6.1). The PREFETCH
// latency exposes the page-walk time only, so FLARE's uniform dummy
// mappings defeat it — while TET-KASLR's double probe still wins.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::baseline {

class PrefetchKaslr {
 public:
  struct Options {
    int rounds = 3;
  };

  struct Result {
    bool success = false;
    int found_slot = -1;
    std::uint64_t found_base = 0;
    std::uint64_t true_base = 0;
    std::size_t probes = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    std::vector<std::uint64_t> slot_scores;
  };

  explicit PrefetchKaslr(os::Machine& m) : PrefetchKaslr(m, Options{}) {}
  PrefetchKaslr(os::Machine& m, Options opt);

  [[nodiscard]] Result run();
  [[nodiscard]] std::uint64_t probe_once(std::uint64_t vaddr);

 private:
  os::Machine& m_;
  Options opt_;
  core::GadgetProgram probe_;
};

}  // namespace whisper::baseline
