// AVX-timing KASLR probe (Choi et al., DAC 2023) — the second
// instruction-specific baseline the paper positions TET-KASLR against
// (§2.1: "the latter exploits AVX instruction"; §6.1: "Nor is the method
// of replacing AVX instructions [sufficient] as the attacker can exploit
// the TLB's vulnerable behavior in completely different ways").
//
// Mechanism: inside the transient window opened by the probe access, an
// AVX op sits behind a dependency-delay chain. For a *mapped* target the
// window collapses before the AVX op issues; for an *unmapped* target the
// replayed walk keeps the window open long enough that the AVX op executes
// transiently and powers the gated unit up — a persistent side effect. A
// subsequent timed AVX op reads the unit's state: warm = unmapped, cold =
// mapped.
//
// Mitigation axis: `CpuConfig::avx_power_gating = false` (the "replace AVX
// instructions" fix) removes the timing difference and kills this probe —
// while TET-KASLR, which never touches the vector unit, keeps working.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::baseline {

class AvxKaslr {
 public:
  struct Options {
    int rounds = 3;
    /// ALU-chain length delaying the transient AVX op past short windows.
    int delay_chain = 24;
  };

  struct Result {
    bool success = false;
    int found_slot = -1;
    std::uint64_t found_base = 0;
    std::uint64_t true_base = 0;
    std::size_t probes = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    std::vector<std::uint64_t> slot_scores;  // timed-AVX latency per slot
  };

  explicit AvxKaslr(os::Machine& m) : AvxKaslr(m, Options{}) {}
  AvxKaslr(os::Machine& m, Options opt);

  [[nodiscard]] Result run();

  /// One probe: returns the timed-AVX latency after the transient window
  /// (small = unit warm = the transient AVX executed = long window).
  [[nodiscard]] std::uint64_t probe_once(std::uint64_t vaddr);

 private:
  os::Machine& m_;
  Options opt_;
  core::GadgetProgram transient_;
  isa::Program timer_;
};

}  // namespace whisper::baseline
