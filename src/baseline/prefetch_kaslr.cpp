#include "baseline/prefetch_kaslr.h"

#include <algorithm>
#include <limits>

namespace whisper::baseline {

PrefetchKaslr::PrefetchKaslr(os::Machine& m, Options opt)
    : m_(m), opt_(opt), probe_(core::make_prefetch_probe()) {}

std::uint64_t PrefetchKaslr::probe_once(std::uint64_t vaddr) {
  m_.evict_tlbs();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = vaddr;
  return core::run_tote(m_, probe_, regs);
}

PrefetchKaslr::Result PrefetchKaslr::run() {
  Result r;
  r.true_base = m_.kernel().kernel_base();
  const std::uint64_t probe_offset =
      m_.kernel().kpti() ? os::kKptiTrampolineOffset : 0;

  const std::uint64_t start = m_.core().cycle();
  r.slot_scores.assign(os::kKaslrSlots,
                       std::numeric_limits<std::uint64_t>::max());

  for (int s = 0; s < os::kKaslrSlots; ++s) {
    const std::uint64_t target = os::kKaslrRegionStart +
                                 static_cast<std::uint64_t>(s) *
                                     os::kKaslrSlotBytes +
                                 probe_offset;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (int round = 0; round < opt_.rounds; ++round) {
      const std::uint64_t t = probe_once(target);
      ++r.probes;
      if (t != 0) best = std::min(best, t);
    }
    r.slot_scores[static_cast<std::size_t>(s)] = best;
  }

  // Same first-mapped-slot scan as TetKaslr (the image spans many slots).
  std::vector<std::uint64_t> sorted = r.slot_scores;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t fastest = sorted.front();
  const std::uint64_t median = sorted[sorted.size() / 2];
  const std::uint64_t threshold = fastest + (median - fastest) / 2;
  r.found_slot = 0;
  for (int s = 0; s < os::kKaslrSlots; ++s) {
    if (r.slot_scores[static_cast<std::size_t>(s)] <= threshold) {
      r.found_slot = s;
      break;
    }
  }
  r.found_base = os::kKaslrRegionStart +
                 static_cast<std::uint64_t>(r.found_slot) *
                     os::kKaslrSlotBytes;
  r.cycles = m_.core().cycle() - start;
  r.seconds = m_.seconds(r.cycles);
  r.success = r.found_base == r.true_base;
  return r;
}

}  // namespace whisper::baseline
