#include "baseline/avx_kaslr.h"

#include <algorithm>

using whisper::isa::ProgramBuilder;
using whisper::isa::Reg;

namespace whisper::baseline {

AvxKaslr::AvxKaslr(os::Machine& m, Options opt) : m_(m), opt_(opt) {
  {
    // Transient stage: probe access opens the window; a dependent ALU
    // chain delays the AVX op so only long (unmapped) windows reach it.
    ProgramBuilder b;
    if (m.config().has_tsx) b.tsx_begin("after");
    b.load(Reg::RAX, Reg::RCX);  // the faulting probe access
    b.mov(Reg::R10, 1);
    for (int i = 0; i < opt_.delay_chain; ++i) b.add(Reg::R10, 1);
    b.avx(Reg::R10);  // dependent on the chain: issues late
    if (m.config().has_tsx)
      b.tsx_end();
    else
      b.mfence();
    b.label("after").halt();
    core::GadgetProgram g{b.build(), -1};
    g.signal_handler = g.prog.label("after");
    transient_ = std::move(g);
  }
  {
    // Architectural timer: fenced rdtsc around one AVX op.
    ProgramBuilder b;
    b.rdtsc(Reg::R8).lfence();
    b.avx();
    b.lfence().rdtsc(Reg::R9).halt();
    timer_ = b.build();
  }
}

std::uint64_t AvxKaslr::probe_once(std::uint64_t vaddr) {
  // Warm the translation iff mapped (the double-probe trick)...
  m_.evict_tlbs();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(Reg::RCX)] = vaddr;
  (void)core::run_tote(m_, transient_, regs);
  // ...let the AVX unit power back down (the warming run itself ran a long
  // cold-TLB window and may have touched it)...
  m_.advance_time(
      static_cast<std::uint64_t>(m_.config().avx_warm_cycles) + 1);
  // ...then the measurement window: short (TLB hit) for mapped targets —
  // the delayed AVX op gets squashed before issue; long for unmapped.
  (void)core::run_tote(m_, transient_, regs);

  // Architecturally time an AVX op: warm (small) means the transient AVX
  // executed, i.e. the window was long, i.e. the target was unmapped.
  const auto r = m_.run_user(timer_, {}, -1, 100'000);
  const auto& tsc = r.t0().tsc;
  if (tsc.size() < 2 || tsc[1] <= tsc[0]) return 0;
  return tsc[1] - tsc[0];
}

AvxKaslr::Result AvxKaslr::run() {
  Result r;
  r.true_base = m_.kernel().kernel_base();
  const std::uint64_t probe_offset =
      m_.kernel().kpti() ? os::kKptiTrampolineOffset : 0;
  const std::uint64_t start = m_.core().cycle();

  r.slot_scores.assign(os::kKaslrSlots, 0);
  for (int s = 0; s < os::kKaslrSlots; ++s) {
    const std::uint64_t target = os::kKaslrRegionStart +
                                 static_cast<std::uint64_t>(s) *
                                     os::kKaslrSlotBytes +
                                 probe_offset;
    std::uint64_t best = 0;  // keep the max: cold readings dominate
    for (int round = 0; round < opt_.rounds; ++round) {
      best = std::max(best, probe_once(target));
      ++r.probes;
    }
    r.slot_scores[static_cast<std::size_t>(s)] = best;
  }

  // Mapped slots read COLD (high latency): first slot above the midpoint
  // between the population median and the maximum.
  std::vector<std::uint64_t> sorted = r.slot_scores;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t median = sorted[sorted.size() / 2];
  const std::uint64_t top = sorted.back();
  const std::uint64_t threshold = median + (top - median) / 2;
  r.found_slot = 0;
  if (top > median + 8) {
    for (int s = 0; s < os::kKaslrSlots; ++s)
      if (r.slot_scores[static_cast<std::size_t>(s)] >= threshold) {
        r.found_slot = s;
        break;
      }
  }
  r.found_base = os::kKaslrRegionStart +
                 static_cast<std::uint64_t>(r.found_slot) *
                     os::kKaslrSlotBytes;
  r.cycles = m_.core().cycle() - start;
  r.seconds = m_.seconds(r.cycles);
  r.success = r.found_base == r.true_base;
  return r;
}

}  // namespace whisper::baseline
