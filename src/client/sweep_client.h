// SweepClient: fault-tolerant fan-out of one RunSpec across N daemons.
//
// The paper's sweep grids are embarrassingly parallel, so the distribution
// problem is purely a reliability problem: shard the trial range across
// endpoints, survive every way a box can fail (unreachable, hung, torn
// connection, killed mid-sweep), and still produce bytes indistinguishable
// from a local runner::run. Concretely:
//
//   * Trials are cut into fixed-size chunks; chunk c starts on endpoint
//     c % N. Each endpoint gets one worker thread that dials (with a
//     connect timeout), sends one run request per chunk using the
//     trial_first shard window, and reads the absolute-indexed trial
//     stream under a per-request deadline.
//   * Failures back off exponentially with seeded deterministic jitter
//     and reconnect. After `endpoint_failures` consecutive failures the
//     endpoint is declared dead and every chunk it still owns goes to a
//     reassignment queue that surviving workers drain — the sweep
//     completes as long as one endpoint lives, and the failures become
//     counters (unreachable / timed_out / reassigned / reconnects), not
//     aborts.
//   * Trials merge by absolute index. A re-fetched chunk may deliver a
//     trial twice: the duplicate must be byte-identical to the stored
//     line (anything else is a determinism violation and fails the sweep
//     loudly). The merged stream — trial lines in index order plus a
//     done line folded with the runner's own merge accounting — is
//     byte-identical to single-process runner::run for ANY endpoint
//     count and ANY failure schedule that completes: invariant 13,
//     pinned by tests/test_dist.cpp and soaked by bench/dist_soak.
//   * An optional flaky plan (fault grammar, drop/shortread/stall kinds)
//     wraps every dialed connection in a FlakyConnection, so all of the
//     above is exercised deterministically, without real packet loss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/endpoint.h"
#include "runner/runner.h"

namespace whisper::client {

struct SweepOptions {
  /// Trials per request. Small chunks spread load and shrink the re-run
  /// window after a failure; large chunks amortize request overhead.
  int chunk_trials = 4;
  /// Per-request response deadline in ms (< 0 = wait forever). The clock
  /// restarts on every received line, so a healthy long run never trips
  /// it — only a silent daemon does.
  int deadline_ms = 60'000;
  /// Connect timeout per dial in ms (< 0 = block).
  int connect_timeout_ms = 2'000;
  /// Consecutive failures (dial, timeout, torn stream) after which an
  /// endpoint is declared dead and its chunks are reassigned.
  int endpoint_failures = 3;
  /// Exponential backoff between an endpoint's retries: base * 2^attempt,
  /// capped, scaled by a deterministic jitter factor in [0.5, 1) seeded
  /// from (jitter_seed, endpoint, attempt).
  int backoff_base_ms = 5;
  int backoff_max_ms = 250;
  std::uint64_t jitter_seed = 0x5eedULL;
  /// Flaky-transport plan (drop/shortread/stall; fault grammar) applied
  /// to every connection, with per-endpoint request ordinals as
  /// coordinates. Empty = no injection.
  std::string flaky_plan;
  /// How long an injected stall burns before reporting timeout.
  int flaky_stall_ms = 50;
  /// Progress hook, called outside the sweep lock after each newly stored
  /// trial: (endpoint index, trials stored via that endpoint so far).
  /// Tests use it to fire kill switches at scripted points.
  std::function<void(std::size_t, std::size_t)> on_trial;
};

struct SweepStats {
  std::size_t requests = 0;          // run requests written (incl. retries)
  std::size_t unreachable = 0;       // dials that threw DialError
  std::size_t timed_out = 0;         // requests that hit the deadline
  std::size_t reconnects = 0;        // live connections torn down and redialed
  std::size_t reassigned = 0;        // chunks executed off their home endpoint
  std::size_t dead_endpoints = 0;    // endpoints declared dead
  std::size_t duplicate_trials = 0;  // re-received lines (all verified equal)
  std::vector<std::size_t> trials_by_endpoint;
};

struct SweepResult {
  /// Every trial received and no fatal error. A false with an empty
  /// error() means every endpoint died with work outstanding.
  bool complete = false;
  std::size_t trials_received = 0;
  /// Canonical (id 0) trial lines by absolute index; empty slots for
  /// trials never received. With complete == true this plus done_line is
  /// the invariant-13 surface.
  std::vector<std::string> trial_lines;
  /// Canonical merged done line; empty unless complete.
  std::string done_line;
  /// First fatal error (server refusal, determinism violation), if any.
  std::string error;
  SweepStats stats;
};

class SweepClient {
 public:
  explicit SweepClient(SweepOptions opts = {});

  /// Shard spec.trials across `endpoints` and merge by index. Blocks
  /// until complete, fatal, or every endpoint is dead. Throws
  /// std::invalid_argument for specs that fail runner::validate() or
  /// cannot cross the wire; endpoint failures never throw.
  [[nodiscard]] SweepResult sweep(
      const runner::RunSpec& spec,
      const std::vector<std::shared_ptr<Endpoint>>& endpoints);

 private:
  SweepOptions opts_;
};

}  // namespace whisper::client
