#include "client/wire.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "defense/defense.h"
#include "noise/noise.h"
#include "serve/protocol.h"
#include "uarch/config.h"

namespace whisper::client {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  // %.17g round-trips every finite double through strtod — unlike the
  // %.9g the response writers use. Requests are inputs, not the identity
  // surface: the server must reconstruct the client's spec EXACTLY or the
  // shard would run subtly different physics.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

std::size_t cpu_index(uarch::CpuModel model) {
  const auto models = uarch::all_models();
  for (std::size_t i = 0; i < models.size(); ++i)
    if (models[i] == model) return i;
  throw std::invalid_argument(
      "client: spec.model is not in uarch::all_models()");
}

}  // namespace

std::string run_request_json(std::uint64_t id, const runner::RunSpec& spec,
                             std::uint64_t trial_first, int trials) {
  if (spec.collect_trace)
    throw std::invalid_argument(
        "client: collect_trace cannot cross the wire (the protocol carries "
        "no event logs); run traced specs locally");
  if (!noise::NoiseProfile::by_name(spec.noise.name))
    throw std::invalid_argument(
        "client: noise profile '" + spec.noise.name +
        "' is not a named preset; the wire carries preset name + seed only");

  // Every representable field is spelled explicitly — a request must not
  // depend on the server's defaults matching the client's.
  std::string out = "{\"id\":" + std::to_string(id) + ",\"verb\":\"run\"";
  out += ",\"attack\":";
  append_escaped(out, spec.attack);
  out += ",\"cpu\":" + std::to_string(cpu_index(spec.model));
  out += ",\"trials\":" + std::to_string(trials);
  out += ",\"trial_first\":" + std::to_string(trial_first);
  out += ",\"seed\":" + std::to_string(spec.base_seed);
  out += ",\"noise\":";
  append_escaped(out, spec.noise.name);
  out += ",\"noise_seed\":" + std::to_string(spec.noise.seed);
  out += ",\"defenses\":[";
  for (std::size_t i = 0; i < spec.defenses.size(); ++i) {
    if (i) out.push_back(',');
    append_escaped(out, defense::format(spec.defenses[i]));
  }
  out += "]";
  out += ",\"kpti\":" + std::string(bool_str(spec.kernel.kpti));
  out += ",\"flare\":" + std::string(bool_str(spec.kernel.flare));
  out += ",\"fgkaslr\":" + std::string(bool_str(spec.kernel.fgkaslr));
  out += ",\"docker\":" + std::string(bool_str(spec.docker));
  out += ",\"rounds\":" + std::to_string(spec.rounds);
  out += ",\"batches\":" + std::to_string(spec.batches);
  out += ",\"payload_bytes\":" + std::to_string(spec.payload_bytes);
  out += ",\"payload_seed\":" + std::to_string(spec.payload_seed);
  out += ",\"adaptive\":" + std::string(bool_str(spec.adaptive));
  out += ",\"confidence_threshold\":";
  append_double(out, spec.confidence_threshold);
  out += ",\"batch_budget\":" + std::to_string(spec.batch_budget);
  out += ",\"reuse_machine\":" + std::string(bool_str(spec.reuse_machine));
  out += ",\"fast_forward\":" + std::string(bool_str(spec.fast_forward));
  out += ",\"retries\":" + std::to_string(spec.retries);
  out += ",\"trial_cycle_budget\":" + std::to_string(spec.trial_cycle_budget);
  out += ",\"trial_wall_budget\":";
  append_double(out, spec.trial_wall_budget);
  out += ",\"verify_reset\":" + std::string(bool_str(spec.verify_reset));
  out += ",\"fault_plan\":";
  append_escaped(out, spec.fault_plan);
  out += "}";
  return out;
}

std::string normalize_id(const std::string& line) {
  constexpr const char* kPrefix = "{\"id\":";
  constexpr std::size_t kPrefixLen = 6;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) return line;
  std::size_t p = kPrefixLen;
  while (p < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[p])))
    ++p;
  if (p == kPrefixLen || p >= line.size() || line[p] != ',') return line;
  return std::string(kPrefix) + "0" + line.substr(p);
}

std::vector<std::string> canonical_trial_lines(const runner::RunResult& r) {
  std::vector<std::string> lines;
  lines.reserve(r.trials.size());
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    runner::ScheduledTrial t;
    t.result = r.trials[i];
    t.outcome = r.outcomes[i];
    lines.push_back(serve::response_trial(0, i, t));
  }
  return lines;
}

std::string canonical_done_line(const runner::RunResult& r) {
  return serve::response_done(0, r);
}

namespace {

std::uint64_t num_u64(const serve::JsonValue* v) {
  return v != nullptr && v->is_number() ? static_cast<std::uint64_t>(v->number)
                                        : 0;
}

bool boolean(const serve::JsonValue* v) {
  return v != nullptr && v->is_bool() && v->boolean;
}

std::size_t error_kind_index(const std::string& name) {
  for (std::size_t k = 0; k < runner::kNumTrialErrorKinds; ++k)
    if (name == runner::to_string(static_cast<runner::TrialErrorKind>(k)))
      return k;
  throw std::runtime_error("client: unknown trial error kind '" + name + "'");
}

}  // namespace

std::string fold_done_line(const runner::RunSpec& spec,
                           const std::vector<std::string>& trial_lines) {
  // Mirror of the fold in Server::execute_run() / runner merge_trials():
  // the done line must come out byte-identical whether the trials were
  // executed here, by one daemon, or by four.
  runner::RunResult merged;
  merged.spec = spec;
  merged.trials.resize(trial_lines.size());
  for (const std::string& line : trial_lines) {
    serve::JsonValue doc;
    try {
      doc = serve::json_parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("client: bad trial line: ") +
                               e.what());
    }
    const bool ok = boolean(doc.get("ok"));
    const std::uint64_t attempts = num_u64(doc.get("attempts"));
    merged.total_attempts += static_cast<std::size_t>(attempts > 0 ? attempts
                                                                   : 1);
    if (boolean(doc.get("quarantined"))) ++merged.quarantined;
    if (const serve::JsonValue* errors = doc.get("errors");
        errors != nullptr && errors->is_array()) {
      for (const serve::JsonValue& e : errors->array) {
        const serve::JsonValue* kind = e.get("kind");
        if (kind == nullptr || !kind->is_string())
          throw std::runtime_error("client: trial error without a kind");
        ++merged.error_counts[error_kind_index(kind->string)];
      }
    }
    if (ok) {
      ++merged.completed;
      if (attempts > 1) ++merged.retried;
      merged.successes += boolean(doc.get("success")) ? 1 : 0;
      merged.total_probes += static_cast<std::size_t>(num_u64(doc.get("probes")));
      merged.total_bytes += static_cast<std::size_t>(num_u64(doc.get("bytes")));
      merged.total_byte_errors +=
          static_cast<std::size_t>(num_u64(doc.get("byte_errors")));
    } else {
      ++merged.failed;
    }
  }
  return serve::response_done(0, merged);
}

}  // namespace whisper::client
