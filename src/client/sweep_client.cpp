#include "client/sweep_client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "client/flaky.h"
#include "client/wire.h"
#include "serve/protocol.h"
#include "stats/rng.h"

namespace whisper::client {

namespace {

struct Chunk {
  std::size_t first = 0;
  int count = 0;
};

/// Everything the per-endpoint workers share, under one mutex.
struct SweepState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::deque<Chunk>> owned;  // per-endpoint home queues
  std::deque<Chunk> orphaned;            // chunks of dead endpoints
  std::vector<std::string> lines;        // canonical trial lines by index
  std::size_t received = 0;
  std::size_t chunks_done = 0;
  std::size_t chunks_total = 0;
  bool fatal = false;
  std::string error;
  SweepStats stats;

  [[nodiscard]] bool finished() const {
    return fatal || chunks_done == chunks_total;
  }
};

std::uint64_t num_u64(const serve::JsonValue* v) {
  return v != nullptr && v->is_number() ? static_cast<std::uint64_t>(v->number)
                                        : 0;
}

/// One endpoint's worker: claims chunks (home queue first, then orphans),
/// executes each against the endpoint with retries, and dies after too
/// many consecutive failures — donating its remaining chunks.
class EndpointWorker {
 public:
  EndpointWorker(const SweepOptions& opts, const runner::RunSpec& spec,
                 SweepState& state, Endpoint& endpoint, std::size_t index,
                 std::atomic<std::uint64_t>& next_id,
                 const fault::FaultPlan& flaky)
      : opts_(opts),
        spec_(spec),
        state_(state),
        endpoint_(endpoint),
        index_(index),
        next_id_(next_id),
        flaky_(flaky) {}

  void run() {
    for (;;) {
      Chunk chunk;
      bool from_orphans = false;
      {
        std::unique_lock<std::mutex> lock(state_.mu);
        state_.cv.wait(lock, [this] {
          return state_.finished() || !state_.owned[index_].empty() ||
                 !state_.orphaned.empty();
        });
        if (state_.finished()) return;
        if (!state_.owned[index_].empty()) {
          chunk = state_.owned[index_].front();
          state_.owned[index_].pop_front();
        } else {
          chunk = state_.orphaned.front();
          state_.orphaned.pop_front();
          from_orphans = true;
          ++state_.stats.reassigned;
        }
      }
      (void)from_orphans;
      if (!execute(chunk)) return;  // endpoint declared dead
    }
  }

 private:
  /// Run one chunk to completion. Returns false when the endpoint died
  /// (the chunk and the home queue have been donated to the orphan pool).
  bool execute(Chunk chunk) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(state_.mu);
        if (state_.fatal) return false;
      }
      if (!conn_ && !dial()) {
        if (give_up(chunk)) return false;
        continue;
      }
      if (attempt_request(chunk)) {
        consecutive_failures_ = 0;
        backoff_attempt_ = 0;
        std::lock_guard<std::mutex> lock(state_.mu);
        ++state_.chunks_done;
        if (state_.finished()) state_.cv.notify_all();
        return true;
      }
      // attempt_request() already tore the connection down (or fatal'd).
      if (give_up(chunk)) return false;
    }
  }

  bool dial() {
    try {
      std::unique_ptr<serve::Connection> raw =
          endpoint_.dial(opts_.connect_timeout_ms);
      if (!flaky_.empty())
        conn_ = std::make_unique<FlakyConnection>(
            std::move(raw), flaky_, sent_requests_, opts_.flaky_stall_ms);
      else
        conn_ = std::move(raw);
      return true;
    } catch (const serve::DialError&) {
      std::lock_guard<std::mutex> lock(state_.mu);
      ++state_.stats.unreachable;
      return false;
    }
  }

  /// Send the chunk's request and consume its response stream. True on a
  /// verified done line; false after tearing down the connection (retry)
  /// or flagging a fatal error.
  bool attempt_request(const Chunk& chunk) {
    const std::uint64_t id = next_id_.fetch_add(1) + 1;
    std::string request;
    try {
      request = run_request_json(id, spec_, chunk.first, chunk.count);
    } catch (const std::exception& e) {
      fail_fatal(e.what());
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(state_.mu);
      ++state_.stats.requests;
    }
    const bool wrote = conn_->write_line(request);
    ++sent_requests_;  // mirrors FlakyConnection's ordinal, drop included
    if (!wrote) {
      drop_connection();
      return false;
    }

    const auto start = std::chrono::steady_clock::now();
    std::string line;
    for (;;) {
      int remaining = opts_.deadline_ms;
      if (opts_.deadline_ms >= 0) {
        const auto spent =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        remaining = opts_.deadline_ms > spent
                        ? static_cast<int>(opts_.deadline_ms - spent)
                        : 0;
      }
      const serve::ReadStatus st = conn_->read_line_for(line, remaining);
      if (st == serve::ReadStatus::kTimeout) {
        {
          std::lock_guard<std::mutex> lock(state_.mu);
          ++state_.stats.timed_out;
        }
        drop_connection();
        return false;
      }
      if (st == serve::ReadStatus::kClosed) {
        drop_connection();
        return false;
      }
      serve::JsonValue doc;
      try {
        doc = serve::json_parse(line);
      } catch (const std::exception&) {
        // Torn line (a shortread, a daemon crash mid-write): transport
        // failure, not data.
        drop_connection();
        return false;
      }
      const serve::JsonValue* type = doc.get("type");
      if (type == nullptr || !type->is_string()) {
        drop_connection();
        return false;
      }
      if (type->string == "error") {
        // A refusal is deterministic — every endpoint would refuse the
        // same spec — so retrying elsewhere cannot help.
        const serve::JsonValue* msg = doc.get("error");
        fail_fatal(msg != nullptr && msg->is_string() ? msg->string
                                                      : "server error");
        return false;
      }
      if (num_u64(doc.get("id")) != id) {
        drop_connection();  // stream out of sync with the request
        return false;
      }
      if (type->string == "trial") {
        if (!store_trial(doc, line)) return false;  // fatal
        continue;
      }
      if (type->string == "done") return verify_chunk(chunk);
      drop_connection();  // unexpected response type mid-run
      return false;
    }
  }

  /// Store one trial line by absolute index; duplicates must match the
  /// stored bytes exactly. Returns false on a fatal determinism breach.
  bool store_trial(const serve::JsonValue& doc, const std::string& line) {
    const std::uint64_t index = num_u64(doc.get("index"));
    std::size_t endpoint_trials = 0;
    bool stored = false;
    {
      std::lock_guard<std::mutex> lock(state_.mu);
      if (index >= state_.lines.size()) {
        set_fatal("client: trial index " + std::to_string(index) +
                  " out of range");
        return false;
      }
      std::string canonical = normalize_id(line);
      std::string& slot = state_.lines[static_cast<std::size_t>(index)];
      if (slot.empty()) {
        slot = std::move(canonical);
        ++state_.received;
        stored = true;
        endpoint_trials = ++state_.stats.trials_by_endpoint[index_];
      } else {
        ++state_.stats.duplicate_trials;
        if (slot != canonical) {
          set_fatal("client: trial " + std::to_string(index) +
                    " differs between endpoints — determinism violation "
                    "(invariant 13)");
          return false;
        }
      }
    }
    if (stored && opts_.on_trial) opts_.on_trial(index_, endpoint_trials);
    return true;
  }

  /// The done line arrived: the chunk counts only if every one of its
  /// trials is stored (a torn stream could lose lines yet deliver done
  /// through a replay on another connection).
  bool verify_chunk(const Chunk& chunk) {
    std::lock_guard<std::mutex> lock(state_.mu);
    for (std::size_t i = chunk.first;
         i < chunk.first + static_cast<std::size_t>(chunk.count); ++i)
      if (state_.lines[i].empty()) return false;
    return true;
  }

  void drop_connection() {
    if (conn_) {
      conn_->close();
      conn_.reset();
      std::lock_guard<std::mutex> lock(state_.mu);
      ++state_.stats.reconnects;
    }
  }

  /// Account one failure; after too many in a row the endpoint dies:
  /// its current chunk and home queue are donated to the orphan pool.
  /// Otherwise back off and let the caller retry. True = endpoint dead.
  bool give_up(const Chunk& chunk) {
    ++consecutive_failures_;
    if (consecutive_failures_ <= opts_.endpoint_failures) {
      backoff();
      return false;
    }
    std::lock_guard<std::mutex> lock(state_.mu);
    state_.orphaned.push_back(chunk);
    while (!state_.owned[index_].empty()) {
      state_.orphaned.push_back(state_.owned[index_].front());
      state_.owned[index_].pop_front();
    }
    ++state_.stats.dead_endpoints;
    state_.cv.notify_all();
    return true;
  }

  void backoff() {
    const std::uint64_t attempt = backoff_attempt_++;
    std::int64_t ms = opts_.backoff_base_ms;
    for (std::uint64_t i = 0; i < attempt && ms < opts_.backoff_max_ms; ++i)
      ms *= 2;
    if (ms > opts_.backoff_max_ms) ms = opts_.backoff_max_ms;
    // Deterministic jitter in [0.5, 1): seeded, so a test's failure
    // schedule replays exactly; spread, so N clients hammering one
    // recovering daemon do not sync up.
    const std::uint64_t roll =
        stats::SplitMix64(opts_.jitter_seed ^
                          (index_ * 0x100000001b3ULL) ^ attempt)
            .next() %
        1000;
    ms = ms / 2 + (ms * static_cast<std::int64_t>(roll)) / 2000;
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  void fail_fatal(const std::string& message) {
    std::lock_guard<std::mutex> lock(state_.mu);
    set_fatal(message);
  }

  /// Caller holds state_.mu.
  void set_fatal(const std::string& message) {
    if (!state_.fatal) {
      state_.fatal = true;
      state_.error = message;
    }
    state_.cv.notify_all();
  }

  const SweepOptions& opts_;
  const runner::RunSpec& spec_;
  SweepState& state_;
  Endpoint& endpoint_;
  std::size_t index_;
  std::atomic<std::uint64_t>& next_id_;
  const fault::FaultPlan& flaky_;

  std::unique_ptr<serve::Connection> conn_;
  std::uint64_t sent_requests_ = 0;
  int consecutive_failures_ = 0;
  std::uint64_t backoff_attempt_ = 0;
};

}  // namespace

SweepClient::SweepClient(SweepOptions opts) : opts_(std::move(opts)) {
  if (opts_.chunk_trials < 1) opts_.chunk_trials = 1;
  if (opts_.endpoint_failures < 0) opts_.endpoint_failures = 0;
}

SweepResult SweepClient::sweep(
    const runner::RunSpec& spec,
    const std::vector<std::shared_ptr<Endpoint>>& endpoints) {
  if (endpoints.empty())
    throw std::invalid_argument("client: sweep needs at least one endpoint");
  runner::validate(spec);
  // Fail fast on specs the wire cannot carry (collect_trace, unnamed
  // noise profiles) — same errors run_request_json would throw mid-sweep.
  (void)run_request_json(1, spec, 0, 1);
  const fault::FaultPlan flaky = fault::FaultPlan::parse(opts_.flaky_plan);
  if (!flaky.empty()) {
    // Surface trial-kind misuse before any thread spawns.
    FlakyConnection probe(nullptr, flaky, 0, 0);
    (void)probe;
  }

  const std::size_t n =
      spec.trials > 0 ? static_cast<std::size_t>(spec.trials) : 0;
  SweepState state;
  state.owned.resize(endpoints.size());
  state.lines.resize(n);
  state.stats.trials_by_endpoint.resize(endpoints.size());
  for (std::size_t first = 0; first < n;
       first += static_cast<std::size_t>(opts_.chunk_trials)) {
    Chunk chunk;
    chunk.first = first;
    chunk.count = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(opts_.chunk_trials),
                              n - first));
    state.owned[state.chunks_total % endpoints.size()].push_back(chunk);
    ++state.chunks_total;
  }

  std::atomic<std::uint64_t> next_id{0};
  std::vector<std::unique_ptr<EndpointWorker>> workers;
  std::vector<std::thread> threads;
  workers.reserve(endpoints.size());
  for (std::size_t e = 0; e < endpoints.size(); ++e)
    workers.push_back(std::make_unique<EndpointWorker>(
        opts_, spec, state, *endpoints[e], e, next_id, flaky));
  threads.reserve(endpoints.size());
  for (std::size_t e = 0; e < endpoints.size(); ++e)
    threads.emplace_back([&workers, e] { workers[e]->run(); });
  for (std::thread& t : threads) t.join();

  SweepResult result;
  result.trials_received = state.received;
  result.trial_lines = std::move(state.lines);
  result.error = state.error;
  result.stats = std::move(state.stats);
  result.complete = !state.fatal && state.received == n &&
                    state.chunks_done == state.chunks_total;
  if (result.complete)
    result.done_line = fold_done_line(spec, result.trial_lines);
  return result;
}

}  // namespace whisper::client
