// FlakyConnection: deterministic transport-fault injection for sweeps.
//
// Wraps any serve::Connection the sweep client dialed and applies a
// fault::FaultPlan with the REQUEST ordinal as the plan's coordinate
// (attempt fixed at 0): the i-th request written through this endpoint's
// connections hits the plan points that name trial i. The plan grammar is
// exactly src/fault's — "drop@3", "shortread~80@11", "stall@5" — so every
// recovery path (reconnect, deadline, reassignment) is testable without
// real packet loss, the same way trial faults made retry paths testable
// without real crashes (PR 5).
//
// Kinds and their meaning here:
//   drop       sever the connection instead of writing the request
//   shortread  deliver the next response line truncated, then sever —
//              the client sees a malformed line, the classic torn read
//   stall      reads stop returning data: sleep `stall_ms`, then report
//              kTimeout, which the client's per-request deadline turns
//              into a timed_out + reconnect
// The trial kinds (throw/corrupt/sleep) are rejected: they belong in
// RunSpec::fault_plan, mirrored by runner::validate() rejecting the
// transport kinds there.
//
// `request_base` offsets the ordinal so one plan spans an endpoint's
// successive connections (reconnects do not reset the coordinates).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault.h"
#include "serve/transport.h"

namespace whisper::client {

class FlakyConnection : public serve::Connection {
 public:
  /// Throws std::invalid_argument if the plan uses a trial-only kind.
  FlakyConnection(std::unique_ptr<serve::Connection> inner,
                  fault::FaultPlan plan, std::uint64_t request_base = 0,
                  int stall_ms = 50);

  bool read_line(std::string& out) override;
  serve::ReadStatus read_line_for(std::string& out, int timeout_ms) override;
  bool write_line(const std::string& line) override;
  void close() override;
  [[nodiscard]] std::string peer() const override;

  /// Requests written so far (base + local count): the next request's
  /// coordinate, which the owner threads through to the replacement
  /// connection after a reconnect.
  [[nodiscard]] std::uint64_t next_request() const { return next_request_; }

 private:
  std::unique_ptr<serve::Connection> inner_;
  fault::FaultPlan plan_;
  std::uint64_t next_request_;
  int stall_ms_;
  bool stalled_ = false;
  bool shortread_pending_ = false;
};

}  // namespace whisper::client
