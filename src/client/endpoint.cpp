#include "client/endpoint.h"

#include <stdexcept>
#include <utility>

#include "serve/transport_tcp.h"
#include "serve/transport_unix.h"

namespace whisper::client {

std::string EndpointSpec::canonical() const {
  return (kind == Kind::kTcp ? "tcp:" : "unix:") + address;
}

EndpointSpec parse_endpoint(const std::string& text) {
  EndpointSpec spec;
  if (text.rfind("tcp:", 0) == 0) {
    spec.kind = EndpointSpec::Kind::kTcp;
    spec.address = text.substr(4);
  } else if (text.rfind("unix:", 0) == 0) {
    spec.kind = EndpointSpec::Kind::kUnix;
    spec.address = text.substr(5);
  } else if (!text.empty() && text[0] == '/') {
    // A bare absolute path can only be a unix socket.
    spec.kind = EndpointSpec::Kind::kUnix;
    spec.address = text;
  } else {
    spec.kind = EndpointSpec::Kind::kTcp;
    spec.address = text;
  }
  if (spec.kind == EndpointSpec::Kind::kTcp) {
    const std::size_t colon = spec.address.rfind(':');
    if (spec.address.empty() || colon == std::string::npos ||
        colon + 1 >= spec.address.size())
      throw std::invalid_argument(
          "client: endpoint '" + text +
          "' must be host:port, tcp:host:port, unix:/path, or /path");
  } else if (spec.address.empty()) {
    throw std::invalid_argument("client: endpoint '" + text +
                                "' has an empty socket path");
  }
  return spec;
}

std::vector<EndpointSpec> parse_endpoint_list(const std::string& csv) {
  std::string stripped;
  for (const char c : csv)
    if (c != ' ') stripped += c;
  if (stripped.empty())
    throw std::invalid_argument("client: --endpoints list is empty");
  // An empty element is a typo, not something to skip quietly: the list
  // order decides which endpoint owns which chunks.
  std::vector<EndpointSpec> specs;
  std::string token;
  const auto flush = [&] {
    if (token.empty())
      throw std::invalid_argument(
          "client: --endpoints has an empty element (doubled or trailing "
          "comma) in '" +
          csv + "'");
    specs.push_back(parse_endpoint(token));
    token.clear();
  };
  for (const char c : stripped) {
    if (c == ',')
      flush();
    else
      token += c;
  }
  flush();
  return specs;
}

namespace {

class TcpEndpoint : public Endpoint {
 public:
  explicit TcpEndpoint(std::string address) : address_(std::move(address)) {}
  std::unique_ptr<serve::Connection> dial(int timeout_ms) override {
    return serve::TcpTransport::dial(address_, timeout_ms);
  }
  std::string label() const override { return "tcp:" + address_; }

 private:
  std::string address_;
};

class UnixEndpoint : public Endpoint {
 public:
  explicit UnixEndpoint(std::string path) : path_(std::move(path)) {}
  std::unique_ptr<serve::Connection> dial(int timeout_ms) override {
    return serve::UnixSocketTransport::dial(path_, timeout_ms);
  }
  std::string label() const override { return "unix:" + path_; }

 private:
  std::string path_;
};

/// Client side of a loopback connection pair as a serve::Connection.
class LoopbackClientConnection : public serve::Connection {
 public:
  LoopbackClientConnection(std::unique_ptr<serve::LoopbackClient> client,
                           std::string label)
      : client_(std::move(client)), label_(std::move(label)) {}
  ~LoopbackClientConnection() override { close(); }

  bool read_line(std::string& out) override { return client_->recv(out); }
  serve::ReadStatus read_line_for(std::string& out, int timeout_ms) override {
    return client_->recv_for(out, timeout_ms);
  }
  bool write_line(const std::string& line) override {
    return client_->send(line);
  }
  void close() override { client_->close(); }
  [[nodiscard]] std::string peer() const override { return label_; }

 private:
  std::unique_ptr<serve::LoopbackClient> client_;
  std::string label_;
};

/// Forwards to a shared inner connection so KillSwitchEndpoint can keep a
/// weak handle for severing while the sweep worker owns the unique_ptr.
class SharedConnection : public serve::Connection {
 public:
  explicit SharedConnection(std::shared_ptr<serve::Connection> inner)
      : inner_(std::move(inner)) {}
  bool read_line(std::string& out) override { return inner_->read_line(out); }
  serve::ReadStatus read_line_for(std::string& out, int timeout_ms) override {
    return inner_->read_line_for(out, timeout_ms);
  }
  bool write_line(const std::string& line) override {
    return inner_->write_line(line);
  }
  void close() override { inner_->close(); }
  [[nodiscard]] std::string peer() const override { return inner_->peer(); }

 private:
  std::shared_ptr<serve::Connection> inner_;
};

}  // namespace

std::unique_ptr<Endpoint> make_endpoint(const EndpointSpec& spec) {
  if (spec.kind == EndpointSpec::Kind::kTcp)
    return std::make_unique<TcpEndpoint>(spec.address);
  return std::make_unique<UnixEndpoint>(spec.address);
}

LoopbackEndpoint::LoopbackEndpoint(serve::LoopbackTransport& transport,
                                   std::string label)
    : transport_(transport), label_(std::move(label)) {}

std::unique_ptr<serve::Connection> LoopbackEndpoint::dial(int timeout_ms) {
  (void)timeout_ms;  // connect() never blocks
  auto client = transport_.connect();
  // A shut-down transport hands back a dead client whose first send fails;
  // probe with a blank keep-alive line (the server skips blanks) so a
  // dead daemon surfaces here as DialError, matching the socket paths.
  if (!client->send(""))
    throw serve::DialError("cannot connect to " + label_ +
                           ": transport shut down");
  return std::make_unique<LoopbackClientConnection>(std::move(client), label_);
}

std::string LoopbackEndpoint::label() const { return label_; }

KillSwitchEndpoint::KillSwitchEndpoint(std::unique_ptr<Endpoint> inner)
    : inner_(std::move(inner)) {}

void KillSwitchEndpoint::kill() {
  std::shared_ptr<serve::Connection> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead_ = true;
    live = live_.lock();
  }
  if (live) live->close();
}

bool KillSwitchEndpoint::killed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

std::unique_ptr<serve::Connection> KillSwitchEndpoint::dial(int timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_)
      throw serve::DialError("cannot connect to " + inner_->label() +
                             ": endpoint killed");
  }
  std::shared_ptr<serve::Connection> conn = inner_->dial(timeout_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      conn->close();
      throw serve::DialError("cannot connect to " + inner_->label() +
                             ": endpoint killed");
    }
    live_ = conn;
  }
  return std::make_unique<SharedConnection>(std::move(conn));
}

std::string KillSwitchEndpoint::label() const { return inner_->label(); }

}  // namespace whisper::client
