// Sweep endpoints: where a SweepClient dials daemons.
//
// An Endpoint is a dialable address — TCP host:port, unix socket path, or
// an in-process LoopbackTransport (how the tests and bench/dist_soak run
// multi-daemon topologies without sockets). dial() either returns a live
// serve::Connection or throws serve::DialError; the sweep client counts
// the throw as `unreachable` and backs off, so a dead box is accounting,
// not an abort.
//
// KillSwitchEndpoint wraps any endpoint with a deterministic "this box
// just died" lever: kill() makes every later dial refuse and severs the
// connection currently in flight. It exists so the kill-one-daemon-
// mid-sweep schedule of invariant 13 is a scripted test scenario instead
// of a flaky race.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/transport.h"
#include "serve/transport_loopback.h"

namespace whisper::client {

/// A parsed endpoint address. Grammar (whisper_cli sweep --endpoints):
///   tcp:host:port | host:port      TCP
///   unix:/path    | /path          unix-domain socket
struct EndpointSpec {
  enum class Kind : std::uint8_t { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string address;  // "host:port" or socket path
  [[nodiscard]] std::string canonical() const;
};

/// Parse one endpoint (throws std::invalid_argument) or a comma-separated
/// list of them.
[[nodiscard]] EndpointSpec parse_endpoint(const std::string& text);
[[nodiscard]] std::vector<EndpointSpec> parse_endpoint_list(
    const std::string& csv);

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Connect, or throw serve::DialError. `timeout_ms` bounds the connect
  /// (< 0 = block).
  [[nodiscard]] virtual std::unique_ptr<serve::Connection> dial(
      int timeout_ms) = 0;

  /// Stable label for accounting and logs ("tcp:127.0.0.1:7777").
  [[nodiscard]] virtual std::string label() const = 0;
};

/// A socket endpoint (TCP or unix) from its parsed spec.
[[nodiscard]] std::unique_ptr<Endpoint> make_endpoint(const EndpointSpec& spec);

/// In-process endpoint over a LoopbackTransport (which must outlive it).
/// The returned connections adapt LoopbackClient's channel pair to the
/// Connection interface, including timed reads.
class LoopbackEndpoint : public Endpoint {
 public:
  explicit LoopbackEndpoint(serve::LoopbackTransport& transport,
                            std::string label = "loopback");
  [[nodiscard]] std::unique_ptr<serve::Connection> dial(
      int timeout_ms) override;
  [[nodiscard]] std::string label() const override;

 private:
  serve::LoopbackTransport& transport_;
  std::string label_;
};

/// Deterministic failure lever around any endpoint (see file comment).
class KillSwitchEndpoint : public Endpoint {
 public:
  explicit KillSwitchEndpoint(std::unique_ptr<Endpoint> inner);

  /// From any thread: refuse all future dials and sever the currently
  /// live connection (its next read reports closed, its writes fail).
  void kill();
  [[nodiscard]] bool killed() const;

  [[nodiscard]] std::unique_ptr<serve::Connection> dial(
      int timeout_ms) override;
  [[nodiscard]] std::string label() const override;

 private:
  std::unique_ptr<Endpoint> inner_;
  mutable std::mutex mu_;
  bool dead_ = false;
  std::weak_ptr<serve::Connection> live_;
};

}  // namespace whisper::client
