#include "client/flaky.h"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace whisper::client {

FlakyConnection::FlakyConnection(std::unique_ptr<serve::Connection> inner,
                                 fault::FaultPlan plan,
                                 std::uint64_t request_base, int stall_ms)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      next_request_(request_base),
      stall_ms_(stall_ms) {
  for (const fault::Kind k :
       {fault::Kind::kThrow, fault::Kind::kCorrupt, fault::Kind::kSleep}) {
    if (plan_.uses(k))
      throw std::invalid_argument(
          std::string("client: flaky plan injects trial fault '") +
          fault::to_string(k) +
          "'; only drop/shortread/stall apply to transports (trial faults "
          "go in RunSpec::fault_plan)");
  }
}

bool FlakyConnection::write_line(const std::string& line) {
  const std::uint64_t request = next_request_++;
  if (plan_.fires(fault::Kind::kDrop, request, 0)) {
    // The connection dies instead of carrying this request; the caller
    // sees exactly what a mid-write RST looks like.
    inner_->close();
    return false;
  }
  if (plan_.fires(fault::Kind::kShortRead, request, 0))
    shortread_pending_ = true;
  if (plan_.fires(fault::Kind::kStall, request, 0)) stalled_ = true;
  return inner_->write_line(line);
}

serve::ReadStatus FlakyConnection::read_line_for(std::string& out,
                                                 int timeout_ms) {
  if (stalled_) {
    // The daemon "stopped responding": burn a bounded slice of the
    // caller's patience, then report the timeout its deadline would have
    // produced. Permanent for this connection — only a reconnect clears it.
    int nap = stall_ms_;
    if (timeout_ms >= 0 && timeout_ms < nap) nap = timeout_ms;
    if (nap > 0) std::this_thread::sleep_for(std::chrono::milliseconds(nap));
    return serve::ReadStatus::kTimeout;
  }
  const serve::ReadStatus st = inner_->read_line_for(out, timeout_ms);
  if (st == serve::ReadStatus::kLine && shortread_pending_) {
    // Torn read: half the line arrives, then the stream dies.
    shortread_pending_ = false;
    out.resize(out.size() / 2);
    inner_->close();
  }
  return st;
}

bool FlakyConnection::read_line(std::string& out) {
  return read_line_for(out, -1) == serve::ReadStatus::kLine;
}

void FlakyConnection::close() { inner_->close(); }

std::string FlakyConnection::peer() const {
  return inner_->peer() + "+flaky";
}

}  // namespace whisper::client
