// Client-side wire helpers: spell a RunSpec shard as a run-request line,
// and normalize response lines into the canonical form invariant 13 is
// stated over.
//
// The canonical form of a distributed sweep is the response stream a
// single-process runner::run would produce, with every "id" rewritten to
// 0 (request ids are routing, not results): one response_trial(0, i, ...)
// line per trial in index order, then one response_done(0, merged) line.
// canonical_trial_lines()/canonical_done_line() build that reference from
// a local RunResult; normalize_id()/fold_done_line() build the same bytes
// from the lines a SweepClient gathered off N endpoints. Equality of the
// two is the invariant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/runner.h"

namespace whisper::client {

/// Serialize the shard [trial_first, trial_first + trials) of `spec` as a
/// whisper_serve run-request line. Lossless for everything the wire can
/// carry; throws std::invalid_argument for specs it cannot represent
/// (collect_trace, a noise profile that is not a named preset) — those
/// must fail loudly, not silently run different physics on the server.
[[nodiscard]] std::string run_request_json(std::uint64_t id,
                                           const runner::RunSpec& spec,
                                           std::uint64_t trial_first,
                                           int trials);

/// Rewrite a response line's leading "id" member to 0. Response writers
/// put "id" first with fixed formatting, so this is a textual prefix
/// rewrite, not a reparse; a line that does not look like a response is
/// returned unchanged.
[[nodiscard]] std::string normalize_id(const std::string& line);

/// The reference side of invariant 13: the canonical per-trial lines and
/// done line of a locally-executed RunResult.
[[nodiscard]] std::vector<std::string> canonical_trial_lines(
    const runner::RunResult& r);
[[nodiscard]] std::string canonical_done_line(const runner::RunResult& r);

/// The distributed side: fold canonical per-trial lines (index order,
/// all non-empty) into the canonical done line, mirroring the runner's
/// merge_trials() accounting field for field. Throws std::runtime_error
/// on a line that does not parse as a trial response.
[[nodiscard]] std::string fold_done_line(
    const runner::RunSpec& spec, const std::vector<std::string>& trial_lines);

}  // namespace whisper::client
