#include "core/covert_channel.h"

namespace whisper::core {

TetCovertChannel::TetCovertChannel(os::Machine& m, Options opt)
    : Attack(m, "cc", opt),
      sync_cycles_(opt.sync_cycles),
      window_(opt.window.value_or(preferred_window(m.config()))),
      gadget_(make_tet_gadget({.window = window_,
                               .source = SecretSource::SharedMemory})) {}

std::uint8_t TetCovertChannel::receive_byte_into(AttackResult& r) {
  analyzer_.reset();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;

  return decode_adaptive(r, analyzer_, kDefaultBatches, [&] {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer_.add(tv, run_tote(m_, gadget_, regs));
      ++r.probes;
    }
  });
}

void TetCovertChannel::execute(std::span<const std::uint8_t> payload,
                               AttackResult& r) {
  const int sync = sync_cycles_.value_or(m_.config().channel_sync_cycles);

  r.bytes.reserve(payload.size());
  for (const std::uint8_t b : payload) {
    // Sender side: publish the byte and pay the handshake.
    m_.poke8(os::Machine::kSharedBase, b);
    m_.advance_time(static_cast<std::uint64_t>(sync));
    // Receiver side: sweep and decode.
    r.bytes.push_back(receive_byte_into(r));
  }
}

std::uint8_t TetCovertChannel::receive_byte() {
  AttackResult scratch;
  return receive_byte_into(scratch);
}

stats::ChannelReport TetCovertChannel::transmit(
    std::span<const std::uint8_t> bytes) {
  const AttackResult r = run(bytes);
  return stats::evaluate_channel(bytes, r.bytes, r.cycles,
                                 m_.config().ghz);
}

}  // namespace whisper::core
