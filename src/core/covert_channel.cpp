#include "core/covert_channel.h"

namespace whisper::core {

TetCovertChannel::TetCovertChannel(os::Machine& m, Options opt)
    : m_(m), opt_(opt),
      window_(opt.window.value_or(preferred_window(m.config()))),
      gadget_(make_tet_gadget({.window = window_,
                               .source = SecretSource::SharedMemory})) {}

std::uint8_t TetCovertChannel::receive_byte() {
  analyzer_.reset();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = kNullProbeAddress;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = os::Machine::kSharedBase;

  for (int batch = 0; batch < opt_.batches; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      const std::uint64_t tote = run_tote(m_, gadget_, regs);
      analyzer_.add(tv, tote);
      ++stats_.probes;
    }
    analyzer_.end_batch();
  }
  return static_cast<std::uint8_t>(analyzer_.decode());
}

stats::ChannelReport TetCovertChannel::transmit(
    std::span<const std::uint8_t> bytes) {
  const std::uint64_t start = m_.core().cycle();
  const int sync =
      opt_.sync_cycles.value_or(m_.config().channel_sync_cycles);

  std::vector<std::uint8_t> received;
  received.reserve(bytes.size());
  for (std::uint8_t b : bytes) {
    // Sender side: publish the byte and pay the handshake.
    m_.poke8(os::Machine::kSharedBase, b);
    m_.advance_time(static_cast<std::uint64_t>(sync));
    // Receiver side: sweep and decode.
    received.push_back(receive_byte());
  }

  const std::uint64_t cycles = m_.core().cycle() - start;
  stats_.cycles += cycles;
  return stats::evaluate_channel(bytes, received, cycles, m_.config().ghz);
}

}  // namespace whisper::core
