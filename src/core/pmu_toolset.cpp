#include "core/pmu_toolset.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/attacks/common.h"
#include "core/gadgets.h"

namespace whisper::core {

std::vector<uarch::PmuEvent> PmuToolset::catalog() const {
  std::vector<uarch::PmuEvent> events;
  const uarch::Vendor vendor = m_.config().vendor;
  for (std::size_t i = 0; i < uarch::kNumPmuEvents; ++i) {
    const auto e = static_cast<uarch::PmuEvent>(i);
    if (e == uarch::PmuEvent::CORE_CYCLES || event_vendor(e) == vendor)
      events.push_back(e);
  }
  return events;
}

EventRecord PmuToolset::measure(uarch::PmuEvent event,
                                const Scenario& baseline,
                                const Scenario& variant) {
  EventRecord r;
  r.event = event;
  const std::size_t idx = static_cast<std::size_t>(event);

  auto run_one = [&](const Scenario& s) {
    const uarch::PmuSnapshot before = m_.core().pmu().snapshot();
    s(m_);
    const uarch::PmuSnapshot after = m_.core().pmu().snapshot();
    return static_cast<double>(uarch::pmu_delta(before, after)[idx]);
  };
  r.baseline = run_one(baseline);
  r.variant = run_one(variant);
  return r;
}

std::vector<EventRecord> PmuToolset::collect(const Scenario& baseline,
                                             const Scenario& variant,
                                             int repeats) {
  std::vector<EventRecord> out;
  repeats = std::max(1, repeats);
  // Warm caches/TLBs once so cold-start effects don't masquerade as
  // scenario differences (the paper's flow measures a warm attack loop).
  baseline(m_);
  variant(m_);
  for (uarch::PmuEvent event : catalog()) {
    std::vector<double> base_runs, var_runs;
    base_runs.reserve(static_cast<std::size_t>(repeats));
    var_runs.reserve(static_cast<std::size_t>(repeats));
    for (int rep = 0; rep < repeats; ++rep) {
      const EventRecord one = measure(event, baseline, variant);
      base_runs.push_back(one.baseline);
      var_runs.push_back(one.variant);
    }
    auto median = [](std::vector<double>& v) {
      std::sort(v.begin(), v.end());
      const std::size_t n = v.size();
      return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    };
    EventRecord r;
    r.event = event;
    r.baseline = median(base_runs);
    r.variant = median(var_runs);
    out.push_back(r);
  }
  return out;
}

std::vector<EventRecord> PmuToolset::filter_significant(
    std::vector<EventRecord> records, double min_rel, double min_abs) {
  std::erase_if(records, [&](const EventRecord& r) {
    return std::abs(r.delta()) < min_abs ||
           std::abs(r.rel_delta()) < min_rel;
  });
  std::sort(records.begin(), records.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return std::abs(a.rel_delta()) > std::abs(b.rel_delta());
            });
  return records;
}

std::string PmuToolset::report(const std::vector<EventRecord>& records,
                               const std::string& title,
                               const std::string& baseline_name,
                               const std::string& variant_name) {
  std::ostringstream out;
  out << title << '\n';
  out << std::left << std::setw(52) << "Event" << std::right << std::setw(14)
      << baseline_name << std::setw(14) << variant_name << std::setw(10)
      << "delta" << '\n';
  out << std::string(90, '-') << '\n';
  for (const EventRecord& r : records) {
    out << std::left << std::setw(52) << uarch::to_string(r.event)
        << std::right << std::fixed << std::setprecision(0) << std::setw(14)
        << r.baseline << std::setw(14) << r.variant << std::showpos
        << std::setw(10) << r.delta() << std::noshowpos << '\n';
  }
  return out.str();
}

// --- Prebuilt scenarios -----------------------------------------------------

namespace {

constexpr std::uint8_t kSecretByte = 'S';

std::array<std::uint64_t, isa::kNumRegs> regs_with(
    std::initializer_list<std::pair<isa::Reg, std::uint64_t>> kv) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  for (const auto& [r, v] : kv) regs[static_cast<std::size_t>(r)] = v;
  return regs;
}

}  // namespace

PmuToolset::Scenario scenario_tet_cc(bool trigger) {
  return [trigger](os::Machine& m) {
    m.core().reset_bpu();
    m.poke8(os::Machine::kSharedBase, kSecretByte);
    const GadgetProgram g =
        make_tet_gadget({.window = preferred_window(m.config()),
                         .source = SecretSource::SharedMemory});
    const auto regs = regs_with(
        {{isa::Reg::RCX, kNullProbeAddress},
         {isa::Reg::RDX, os::Machine::kSharedBase},
         {isa::Reg::RBX, trigger ? kSecretByte : kSecretByte + 1}});
    (void)run_tote(m, g, regs);
  };
}

PmuToolset::Scenario scenario_tet_md(bool trigger) {
  return [trigger](os::Machine& m) {
    m.core().reset_bpu();
    const std::uint8_t secret[] = {kSecretByte};
    const std::uint64_t kaddr = m.plant_kernel_secret(secret);
    const GadgetProgram g =
        make_tet_gadget({.window = preferred_window(m.config()),
                         .source = SecretSource::FaultingLoad});
    const auto regs = regs_with(
        {{isa::Reg::RCX, kaddr},
         {isa::Reg::RBX, trigger ? kSecretByte : kSecretByte + 1}});
    (void)run_tote(m, g, regs);
  };
}

PmuToolset::Scenario scenario_kaslr(bool mapped) {
  return [mapped](os::Machine& m) {
    const std::uint64_t target = mapped
                                     ? m.kernel().kernel_base()
                                     : m.kernel().unmapped_probe_address();
    const GadgetProgram g =
        make_kaslr_gadget(preferred_window(m.config()));
    m.evict_tlbs();
    const auto regs =
        regs_with({{isa::Reg::RCX, target}, {isa::Reg::RBX, 0}});
    (void)run_tote(m, g, regs);
  };
}

PmuToolset::Scenario scenario_flow(bool trigger, int pad_nops) {
  return [trigger, pad_nops](os::Machine& m) {
    m.core().reset_bpu();
    m.poke8(os::Machine::kSharedBase, kSecretByte);
    const GadgetProgram g =
        make_tet_gadget({.window = preferred_window(m.config()),
                         .source = SecretSource::SharedMemory,
                         .pad_nops_before_end = pad_nops});
    const auto regs = regs_with(
        {{isa::Reg::RCX, kNullProbeAddress},
         {isa::Reg::RDX, os::Machine::kSharedBase},
         {isa::Reg::RBX, trigger ? kSecretByte : kSecretByte + 1}});
    (void)run_tote(m, g, regs);
  };
}

}  // namespace whisper::core
