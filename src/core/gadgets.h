// TET gadget builders — the attack programs of the paper, expressed in the
// whisper ISA.
//
// Register contract shared by all gadgets (values supplied per probe):
//   RCX = faulting / probe address
//   RDX = architecturally readable secret address (CC, RSB variants)
//   RBX = test value being swept (0..255)
//   R8/R9 = rdtsc scratch
//
// Every gadget measures ToTE with a fenced RDTSC pair and returns control to
// a `halt`, so `run_tote()` can extract end-start from the retired TSC trace.
#pragma once

#include <cstdint>

#include "isa/builder.h"
#include "isa/program.h"
#include "os/machine.h"

namespace whisper::core {

/// How the transient window is opened/suppressed — the paper's
/// `transient_begin`: an Intel TSX transaction or a signal handler.
enum class WindowKind : std::uint8_t { Tsx, Signal };

/// Pick the cheap suppression if the part has TSX.
[[nodiscard]] WindowKind preferred_window(const uarch::CpuConfig& cfg);

/// Where the byte under test comes from inside the transient window.
enum class SecretSource : std::uint8_t {
  FaultingLoad,   // the faulting load itself forwards it (TET-MD / TET-ZBL)
  SharedMemory,   // an ordinary load from RDX (TET-CC)
  None,           // condition derives from RBX alone (TET-KASLR)
};

struct GadgetProgram {
  isa::Program prog;
  int signal_handler = -1;  // valid instruction index for Signal windows
};

struct TetGadgetSpec {
  WindowKind window = WindowKind::Tsx;
  SecretSource source = SecretSource::FaultingLoad;
  /// Extra nops between the branch join point and the window end — the
  /// Fig. 4 experiment ("number of nop instructions preceding the mfence").
  int pad_nops_before_end = 0;
};

/// Fig. 1a: the basic TET gadget (also TET-CC / TET-MD / TET-ZBL bodies).
[[nodiscard]] GadgetProgram make_tet_gadget(const TetGadgetSpec& spec);

/// Branchless control variant of the Fig. 1a gadget: the secret comparison
/// feeds a CMOV instead of a Jcc. No misprediction, no resteer — the TET
/// channel is silent. Demonstrates the constant-time software mitigation.
[[nodiscard]] GadgetProgram make_tet_gadget_branchless(WindowKind window);

/// TET-Spectre-V1 gadget (extension): a bounds check on a flushed length
/// opens the speculative window; the transient in-bounds path performs the
/// secret-dependent Jcc. Registers: RDI = &array_length (flushed per
/// probe), RSI = index, RDX = array base, RBX = test value.
[[nodiscard]] GadgetProgram make_spectre_v1_gadget();

/// SpectreRewind gadget (PAPERS.md): divider contention instead of a cache
/// footprint. A chain of `receiver_divs` to-be-retired divides runs with a
/// one-cycle bubble between links (div -> mov -> div); a V1-style flushed
/// bounds check opens a transient window in which a secret-dependent CMOV
/// selects the divisor of a transient FDIV — a full-latency divisor iff the
/// secret byte equals RBX. That divide steals the bubble on the single
/// non-pipelined divider and pushes the whole receiver chain (and the
/// closing fenced RDTSC) out by ~div_latency. Registers as the V1 gadget:
/// RDI = &array_length (flushed per probe), RSI = index, RDX = array base,
/// RBX = test value.
[[nodiscard]] GadgetProgram make_rewind_gadget(int receiver_divs = 12);

/// Listing 1: the TET-RSB gadget. Overwrites its own return address (to
/// label `after`), flushes the stack slot, and returns — the RSB predicts
/// the original return site where the secret-dependent Jcc executes
/// transiently.
[[nodiscard]] GadgetProgram make_rsb_gadget();

/// Listing 2: the TET-KASLR probe. Faulting load of the probe address
/// (RCX) plus a Jcc whose direction the attacker drives via RBX
/// (RBX == 0 => taken). ToTE separates mapped from unmapped targets.
[[nodiscard]] GadgetProgram make_kaslr_gadget(WindowKind window);

/// Prefetch-timing probe (EntryBleed-style baseline): rdtsc-fenced
/// PREFETCH of RCX. Never faults; latency exposes the walk time only.
[[nodiscard]] GadgetProgram make_prefetch_probe();

/// A fenced, timed single load of [RCX] (Flush+Reload's reload step and
/// general latency probing).
[[nodiscard]] GadgetProgram make_timed_load();

/// §4.4 SMT covert channel: the spy's timed nop loop. Runs `iters`
/// iterations of a fixed nop body between an initial and final RDTSC.
[[nodiscard]] isa::Program make_smt_spy(int iters);

/// §4.4: the trojan sends '1' by triggering a suppressed page fault
/// (pipeline flush steals the shared front end), '0' by an equally long
/// nop sequence.
[[nodiscard]] GadgetProgram make_smt_trojan(bool bit);

/// Trojan with `skew_nops` of leading work — models imperfect
/// sender/receiver synchronisation at high symbol rates (§4.4).
[[nodiscard]] GadgetProgram make_smt_trojan_skewed(bool bit, int skew_nops);

/// Meltdown + Flush&Reload baseline: transient gadget that encodes the
/// faulted byte into a 256-line probe array at RDI (TET comparison point).
[[nodiscard]] GadgetProgram make_meltdown_fr_gadget(WindowKind window);

/// Reload timer: measures the load latency of all 256 probe-array lines
/// (base RDI) and stores the cycle counts to the buffer at RSI.
[[nodiscard]] isa::Program make_fr_reload_sweep();

/// Run a gadget once on `m` and return the measured ToTE (end - start), or
/// 0 if the program did not retire both RDTSCs within the cycle budget.
[[nodiscard]] std::uint64_t run_tote(
    os::Machine& m, const GadgetProgram& g,
    const std::array<std::uint64_t, isa::kNumRegs>& regs,
    std::uint64_t cycle_limit = 200'000);

}  // namespace whisper::core
