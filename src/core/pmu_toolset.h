// The PMU analysis toolset of §5 / Fig. 2: preparation (event catalog),
// online collection (run the scenario under one event at a time, as a
// perf-style single programmable counter would), and offline analysis
// (differential filtering between a baseline and a variant scenario).
//
// The paper used this flow to isolate the Table 3 events that separate
// "Jcc triggered" from "not triggered" runs; the same flow reproduces that
// table against the model.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "os/machine.h"
#include "uarch/pmu.h"

namespace whisper::core {

struct EventRecord {
  uarch::PmuEvent event = uarch::PmuEvent::CORE_CYCLES;
  double baseline = 0.0;  // median count, baseline scenario
  double variant = 0.0;   // median count, variant scenario

  [[nodiscard]] double delta() const noexcept { return variant - baseline; }
  [[nodiscard]] double rel_delta() const noexcept {
    const double denom = baseline != 0.0 ? baseline : 1.0;
    return delta() / denom;
  }
};

class PmuToolset {
 public:
  /// A measured scenario: everything between two PMU snapshots.
  using Scenario = std::function<void(os::Machine&)>;

  explicit PmuToolset(os::Machine& m) : m_(m) {}

  /// Stage 1 — preparation: all events this vendor's perf list exposes.
  [[nodiscard]] std::vector<uarch::PmuEvent> catalog() const;

  /// Stage 2 — online collection: median counter delta over `repeats` runs
  /// of each scenario, collected one event at a time.
  [[nodiscard]] std::vector<EventRecord> collect(const Scenario& baseline,
                                                 const Scenario& variant,
                                                 int repeats = 5);

  /// Measure a single event once for each scenario (no medians).
  [[nodiscard]] EventRecord measure(uarch::PmuEvent event,
                                    const Scenario& baseline,
                                    const Scenario& variant);

  /// Stage 3 — offline analysis: keep events whose scenario delta is both
  /// relatively (>= min_rel) and absolutely (>= min_abs) significant.
  [[nodiscard]] static std::vector<EventRecord> filter_significant(
      std::vector<EventRecord> records, double min_rel = 0.05,
      double min_abs = 1.0);

  /// Table-formatted report, largest |relative delta| first.
  [[nodiscard]] static std::string report(
      const std::vector<EventRecord>& records, const std::string& title,
      const std::string& baseline_name = "baseline",
      const std::string& variant_name = "variant");

 private:
  os::Machine& m_;
};

// --- Prebuilt paper scenarios (the Table 3 scenes) -------------------------

/// TET-CC gadget, one probe; trigger == the Jcc condition holds.
[[nodiscard]] PmuToolset::Scenario scenario_tet_cc(bool trigger);
/// TET-MD gadget against a planted kernel secret.
[[nodiscard]] PmuToolset::Scenario scenario_tet_md(bool trigger);
/// TET-KASLR probe of a mapped vs. unmapped kernel address.
[[nodiscard]] PmuToolset::Scenario scenario_kaslr(bool mapped);
/// The §5.2.5 transient-flow experiment: trigger/not with `pad_nops`
/// before the window-ending fence.
[[nodiscard]] PmuToolset::Scenario scenario_flow(bool trigger, int pad_nops);

}  // namespace whisper::core
