// PMU-based attack detection, in the spirit of the hardware-performance-
// counter detectors the paper's threat model assumes are deployed
// ("state-of-art attack detection based on cache behavior", §4.2, [15]).
//
// Two detectors are modelled:
//  * CacheAttackDetector — flags Flush+Reload-style cache thrash (the
//    flush/reload miss storm). Catches the classic Meltdown-F+R pipeline;
//    blind to TET, whose probes barely touch the data caches (§6.1).
//  * ClearRateDetector — flags machine-clear storms. This *would* notice
//    exception-suppressed TET attacks (MD/ZBL) but not TET-RSB or
//    TET-KASLR-over-TSX on low duty cycles; included to quantify the
//    paper's §6 discussion of what detecting Whisper would actually take.
#pragma once

#include "uarch/pmu.h"

namespace whisper::core {

struct DetectionReport {
  // Cache-channel signature.
  double dram_per_l1_hit = 0.0;    // reload-miss storm indicator
  std::uint64_t dram_accesses = 0;
  bool cache_attack_suspected = false;
  // Machine-clear signature.
  double clears_per_kilocycle = 0.0;
  bool clear_storm_suspected = false;
};

class PmuDetector {
 public:
  struct Thresholds {
    double dram_per_l1 = 0.8;        // reloads dominated by misses
    std::uint64_t min_dram = 64;     // ignore tiny windows
    double clears_per_kc = 0.2;      // machine-clear storm
  };

  PmuDetector() : PmuDetector(Thresholds{}) {}
  explicit PmuDetector(Thresholds t) : thresholds_(t) {}

  /// Analyze a monitored workload window (PMU delta over the window).
  [[nodiscard]] DetectionReport analyze(const uarch::PmuSnapshot& delta) const;

 private:
  Thresholds thresholds_;
};

}  // namespace whisper::core
