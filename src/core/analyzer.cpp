#include "core/analyzer.h"

#include <algorithm>

namespace whisper::core {

void ArgmaxAnalyzer::add(int test_value, std::uint64_t tote) {
  if (tote == 0 || test_value < 0 || test_value > 255) return;
  hist_.add(static_cast<std::int64_t>(tote));
  sum_[static_cast<std::size_t>(test_value)] += tote;
  ++count_[static_cast<std::size_t>(test_value)];

  const bool better =
      !batch_has_sample_ ||
      (polarity_ == Polarity::Max ? tote > batch_extreme_
                                  : tote < batch_extreme_);
  if (better) {
    batch_has_sample_ = true;
    batch_extreme_ = tote;
    batch_arg_ = test_value;
  }
}

void ArgmaxAnalyzer::end_batch() {
  if (batch_has_sample_) {
    ++votes_[static_cast<std::size_t>(batch_arg_)];
    ++batches_;
  }
  batch_has_sample_ = false;
  batch_extreme_ = 0;
  batch_arg_ = 0;
}

int ArgmaxAnalyzer::decode() const {
  return static_cast<int>(
      std::max_element(votes_.begin(), votes_.end()) - votes_.begin());
}

double ArgmaxAnalyzer::confidence() const {
  if (batches_ == 0) return 0.0;
  std::uint32_t top = 0, second = 0;
  for (const std::uint32_t v : votes_) {
    if (v > top) {
      second = top;
      top = v;
    } else if (v > second) {
      second = v;
    }
  }
  return static_cast<double>(top - second) / static_cast<double>(batches_);
}

int ArgmaxAnalyzer::decode_by_mean() const {
  const auto means = mean_tote_by_value();
  int best = 0;
  bool have = false;
  for (int tv = 0; tv < 256; ++tv) {
    const auto i = static_cast<std::size_t>(tv);
    if (count_[i] == 0) continue;
    if (!have) {
      best = tv;
      have = true;
      continue;
    }
    const auto b = static_cast<std::size_t>(best);
    const bool better = polarity_ == Polarity::Max
                            ? means[i] > means[b]
                            : means[i] < means[b];
    if (better) best = tv;
  }
  return best;
}

double ArgmaxAnalyzer::mean_confidence() const {
  const auto means = mean_tote_by_value();
  bool have = false;
  double top = 0.0, second = 0.0, bottom = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    if (count_[i] == 0) continue;
    // Fold Min polarity into Max by negating: "top" is always the winner.
    const double m = polarity_ == Polarity::Max ? means[i] : -means[i];
    if (!have) {
      have = true;
      top = second = bottom = m;
      continue;
    }
    if (m > top) {
      second = top;
      top = m;
    } else if (m > second || second == top) {
      second = m;
    }
    bottom = std::min(bottom, m);
  }
  if (!have || top == bottom) return 0.0;
  return (top - second) / (top - bottom);
}

std::array<double, 256> ArgmaxAnalyzer::mean_tote_by_value() const {
  std::array<double, 256> out{};
  for (std::size_t i = 0; i < 256; ++i)
    out[i] = count_[i] ? static_cast<double>(sum_[i]) /
                             static_cast<double>(count_[i])
                       : 0.0;
  return out;
}

void ArgmaxAnalyzer::reset() {
  votes_.fill(0);
  hist_.clear();
  sum_.fill(0);
  count_.fill(0);
  batch_has_sample_ = false;
  batch_extreme_ = 0;
  batch_arg_ = 0;
  batches_ = 0;
}

}  // namespace whisper::core
