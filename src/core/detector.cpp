#include "core/detector.h"

namespace whisper::core {

namespace {

std::uint64_t at(const uarch::PmuSnapshot& s, uarch::PmuEvent e) {
  return s[static_cast<std::size_t>(e)];
}

}  // namespace

DetectionReport PmuDetector::analyze(const uarch::PmuSnapshot& delta) const {
  DetectionReport r;

  const std::uint64_t dram = at(delta, uarch::PmuEvent::MEM_LOAD_RETIRED_DRAM);
  const std::uint64_t l1 = at(delta, uarch::PmuEvent::MEM_LOAD_RETIRED_L1_HIT);
  r.dram_accesses = dram;
  r.dram_per_l1_hit =
      static_cast<double>(dram) / static_cast<double>(l1 ? l1 : 1);
  r.cache_attack_suspected = dram >= thresholds_.min_dram &&
                             r.dram_per_l1_hit >= thresholds_.dram_per_l1;

  const std::uint64_t cycles = at(delta, uarch::PmuEvent::CORE_CYCLES);
  const std::uint64_t clears =
      at(delta, uarch::PmuEvent::MACHINE_CLEARS_COUNT);
  r.clears_per_kilocycle =
      cycles ? 1000.0 * static_cast<double>(clears) /
                   static_cast<double>(cycles)
             : 0.0;
  r.clear_storm_suspected =
      r.clears_per_kilocycle >= thresholds_.clears_per_kc;
  return r;
}

}  // namespace whisper::core
