#include "core/gadgets.h"

using whisper::isa::Cond;
using whisper::isa::ProgramBuilder;
using whisper::isa::Reg;

namespace whisper::core {

WindowKind preferred_window(const uarch::CpuConfig& cfg) {
  return cfg.has_tsx ? WindowKind::Tsx : WindowKind::Signal;
}

namespace {

/// Emit `rdtsc R8; lfence` (measurement start).
void emit_start(ProgramBuilder& b) {
  b.rdtsc(Reg::R8).lfence();
}

/// Emit the measurement tail at the current position, labelled `after`:
/// `lfence; rdtsc R9; halt`.
void emit_end(ProgramBuilder& b) {
  b.label("after").lfence().rdtsc(Reg::R9).halt();
}

GadgetProgram finish(ProgramBuilder& b) {
  GadgetProgram g{b.build(), -1};
  g.signal_handler = g.prog.label("after");
  return g;
}

}  // namespace

GadgetProgram make_tet_gadget(const TetGadgetSpec& spec) {
  ProgramBuilder b;
  emit_start(b);
  if (spec.window == WindowKind::Tsx) b.tsx_begin("after");

  // ---- transient block start (Fig. 1a line 2) ----
  b.load_byte(Reg::RAX, Reg::RCX);  // faulting load; may forward data
  switch (spec.source) {
    case SecretSource::FaultingLoad:
      b.cmp(Reg::RAX, Reg::RBX);  // secret byte vs test value
      break;
    case SecretSource::SharedMemory:
      b.load_byte(Reg::R10, Reg::RDX);  // architecturally readable secret
      b.cmp(Reg::R10, Reg::RBX);
      break;
    case SecretSource::None:
      b.cmp(Reg::RBX, 0);  // attacker-driven condition
      break;
  }
  b.jcc(Cond::Z, "hit");  // Fig. 1a line 3: if (value == test) ...
  // Fall-through (not-triggered) path: the §5.2.5 experiment pads this
  // path with nops before the window-ending fence; the taken path skips
  // them entirely (Fig. 4's path ③ "does not meet a fence").
  if (spec.pad_nops_before_end > 0) b.nop(spec.pad_nops_before_end);
  b.jmp("join");
  // Keep the taken path in a cold fetch block so the transient resteer
  // exercises the DSB→MITE switch (Fig. 3).
  b.nop(8);
  b.label("hit").nop();
  b.label("join");
  // ---- transient block end ----

  if (spec.window == WindowKind::Tsx)
    b.tsx_end();
  else
    b.mfence();
  emit_end(b);
  return finish(b);
}

GadgetProgram make_tet_gadget_branchless(WindowKind window) {
  ProgramBuilder b;
  emit_start(b);
  if (window == WindowKind::Tsx) b.tsx_begin("after");
  b.load_byte(Reg::RAX, Reg::RCX);  // faulting load opens the window
  b.load_byte(Reg::R10, Reg::RDX);
  b.cmp(Reg::R10, Reg::RBX);
  b.mov(Reg::R11, 0);
  b.mov(Reg::R12, 1);
  b.cmov(Cond::Z, Reg::R11, Reg::R12);  // select, never predict
  if (window == WindowKind::Tsx)
    b.tsx_end();
  else
    b.mfence();
  emit_end(b);
  return finish(b);
}

GadgetProgram make_spectre_v1_gadget() {
  ProgramBuilder b;
  emit_start(b);
  // Classic V1 shape: flush the bound so the check resolves late.
  b.clflush(Reg::RDI);
  b.load(Reg::R9, Reg::RDI);    // array_length — DRAM-slow after the flush
  b.cmp(Reg::RSI, Reg::R9);     // CF set iff index < length (in bounds)
  b.jcc(Cond::NC, "oob");       // trained not-taken by in-bounds accesses
  // Speculative in-bounds path: the out-of-bounds secret access plus the
  // Whisper Jcc.
  b.mov(Reg::R13, Reg::RDX);
  b.add(Reg::R13, Reg::RSI);
  b.load_byte(Reg::RAX, Reg::R13);  // architecturally reachable, sandbox-
  b.cmp(Reg::RAX, Reg::RBX);        // forbidden secret
  b.jcc(Cond::Z, "hit");
  b.jmp("join");
  b.nop(8);
  b.label("hit").nop();
  b.label("join").nop();
  b.label("oob").nop();
  emit_end(b);
  return finish(b);
}

GadgetProgram make_rewind_gadget(int receiver_divs) {
  ProgramBuilder b;
  // Receiver operands, set up outside the timed section. R10 seeds each
  // chain link's dividend; R11 = 3 keeps every receiver divide on the
  // full-latency path; R14 is the hard divisor the transient FDIV gets when
  // the secret matches the test value.
  b.mov(Reg::R10, 0x7ffffffffffll);
  b.mov(Reg::R11, 3);
  b.mov(Reg::R14, 0x123456789ll);
  emit_start(b);
  // Flush the bound so the check resolves at DRAM speed — the window stays
  // open while the receiver chain drains.
  b.clflush(Reg::RDI);
  b.load(Reg::R9, Reg::RDI);    // array_length
  // Receiver: to-be-retired divides with a one-cycle bubble between links.
  // The mov both carries the dependence (so link k+1 becomes ready exactly
  // one cycle after link k completes) and re-seeds the dividend.
  for (int i = 0; i < receiver_divs; ++i) {
    b.fdiv(Reg::R12, Reg::R11);
    b.add(Reg::R12, Reg::R10);  // 1-cycle bubble + keep the dividend large
  }
  b.cmp(Reg::RSI, Reg::R9);     // CF set iff index < length (in bounds)
  b.jcc(Cond::NC, "oob");       // trained not-taken by in-bounds accesses
  // Transient (predicted in-bounds) path: read the secret, select the
  // divisor branchlessly — the SIGNAL carrier is divider occupancy, not a
  // resteer — and divide. On secret == test the FDIV occupies the divider
  // through the receiver's next bubble; its squash does not release the
  // unit.
  b.mov(Reg::R15, Reg::RDX);
  b.add(Reg::R15, Reg::RSI);
  b.load_byte(Reg::RAX, Reg::R15);
  b.mov(Reg::R13, Reg::RAX);    // keep the byte for the victim Jcc below
  b.xor_(Reg::RAX, Reg::RBX);   // 0 (ZF set) iff secret == test
  b.mov(Reg::R15, 1);           // early-exit divisor
  b.cmov(Cond::Z, Reg::R15, Reg::R14);
  b.fdiv(Reg::RAX, Reg::R15);
  // The victim's own data-dependent branch, as in the V1 gadget. It is not
  // the channel — the FDIV above is older and issues regardless — but its
  // outcome feeds data-dependent bits into the gshare history, so the
  // bounds check keeps mispredicting probe after probe instead of the
  // probe-phase PHT entry saturating taken.
  b.cmp(Reg::R13, Reg::RBX);
  b.jcc(Cond::Z, "hit");
  b.jmp("join");
  b.nop(8);
  b.label("hit").nop();
  b.label("join").nop();
  b.label("oob").nop();
  // emit_end's LFENCE waits for every older entry — including the delayed
  // tail of the receiver chain — before the closing RDTSC executes.
  emit_end(b);
  return finish(b);
}

GadgetProgram make_rsb_gadget() {
  ProgramBuilder b;
  emit_start(b);
  b.call("func");

  // Speculated return site (Listing 1 line 5): the instruction right after
  // the call. The RSB predicts the ret here, but the overwritten stack slot
  // actually sends it to `landing` — so this path only ever runs
  // transiently.
  b.load_byte(Reg::RAX, Reg::RDX);  // secret (attacker-readable)
  b.cmp(Reg::RAX, Reg::RBX);
  b.jcc(Cond::Z, "hit");
  b.jmp("rjoin");
  b.nop(8);
  b.label("hit").nop();
  b.label("rjoin").nop().jmp("after");

  b.label("func");
  b.mov_label(Reg::R11, "landing");   // Listing 1 line 8: movabs $2f
  b.store(Reg::RSP, Reg::R11);        // line 9: overwrite return address
  b.clflush(Reg::RSP);                // line 10: push resolution to DRAM
  b.ret();                            // line 11: RSB mispredicts

  b.label("landing").nop();           // line 12: actual return target "2:"
  emit_end(b);
  return finish(b);
}

GadgetProgram make_kaslr_gadget(WindowKind window) {
  ProgramBuilder b;
  b.mfence();  // Listing 2 line 1
  emit_start(b);
  if (window == WindowKind::Tsx) b.tsx_begin("after");

  b.load(Reg::RAX, Reg::RCX);   // probe the candidate kernel address
  b.cmp(Reg::RBX, 0);           // attacker-driven condition (Listing 2 jz)
  b.jcc(Cond::Z, "khit");
  b.jmp("kjoin");
  b.nop(8);
  b.label("khit").nop();        // "1: nop"
  b.label("kjoin").nop();       // "2: nop" — the unreachable printf elided

  if (window == WindowKind::Tsx)
    b.tsx_end();
  else
    b.mfence();
  emit_end(b);
  return finish(b);
}

GadgetProgram make_prefetch_probe() {
  ProgramBuilder b;
  emit_start(b);
  b.prefetch(Reg::RCX);
  emit_end(b);
  return finish(b);
}

GadgetProgram make_timed_load() {
  ProgramBuilder b;
  emit_start(b);
  b.load_byte(Reg::RAX, Reg::RCX);
  emit_end(b);
  return finish(b);
}

isa::Program make_smt_spy(int iters) {
  ProgramBuilder b;
  b.rdtsc(Reg::R8).lfence();
  b.mov(Reg::R12, 0);
  b.label("loop");
  b.nop(6);
  b.add(Reg::R12, 1);
  b.cmp(Reg::R12, iters);
  b.jcc(Cond::NZ, "loop");
  b.lfence().rdtsc(Reg::R9).halt();
  return b.build();
}

GadgetProgram make_smt_trojan_skewed(bool bit, int skew_nops) {
  ProgramBuilder b;
  if (skew_nops > 0) b.nop(skew_nops);
  if (bit) {
    b.load_byte(Reg::RAX, Reg::RCX);  // RCX = unmapped → fault
    b.nop(4);
    b.label("after").halt();
    GadgetProgram g{b.build(), -1};
    g.signal_handler = g.prog.label("after");
    return g;
  }
  b.mov(Reg::RAX, 0);
  b.nop(4);
  b.label("after").halt();
  GadgetProgram g{b.build(), -1};
  g.signal_handler = g.prog.label("after");
  return g;
}

GadgetProgram make_smt_trojan(bool bit) {
  ProgramBuilder b;
  if (bit) {
    // '1': suppressed page fault — the machine clear stalls the shared
    // front end, which the spy observes (§4.4).
    b.load_byte(Reg::RAX, Reg::RCX);  // RCX = unmapped → fault
    b.nop(4);
    b.label("after").halt();
    GadgetProgram g{b.build(), -1};
    g.signal_handler = g.prog.label("after");
    return g;
  }
  // '0': architecturally similar work without a fault.
  b.mov(Reg::RAX, 0);
  b.nop(4);
  b.label("after").halt();
  GadgetProgram g{b.build(), -1};
  g.signal_handler = g.prog.label("after");
  return g;
}

GadgetProgram make_meltdown_fr_gadget(WindowKind window) {
  ProgramBuilder b;
  if (window == WindowKind::Tsx) b.tsx_begin("after");
  b.load_byte(Reg::RAX, Reg::RCX);  // faulting secret load
  b.shl(Reg::RAX, 6);               // byte -> cache-line offset
  b.add(Reg::RAX, Reg::RDI);        // probe-array base
  b.load_byte(Reg::R10, Reg::RAX);  // transient encode into the cache
  if (window == WindowKind::Tsx)
    b.tsx_end();
  else
    b.nop();
  b.label("after").halt();
  GadgetProgram g{b.build(), -1};
  g.signal_handler = g.prog.label("after");
  return g;
}

isa::Program make_fr_reload_sweep() {
  ProgramBuilder b;
  // RDI = probe array base, RSI = output buffer (256 qwords of latencies).
  b.mov(Reg::R12, 0);        // line index
  b.mov(Reg::R13, 0);        // scratch: current line address
  b.label("loop");
  b.mov(Reg::R13, Reg::RDI);
  b.mov(Reg::R15, Reg::R12);
  b.shl(Reg::R15, 6);
  b.add(Reg::R13, Reg::R15);
  b.lfence();
  b.rdtsc(Reg::R8);
  b.lfence();
  b.load_byte(Reg::R10, Reg::R13);
  b.lfence();
  b.rdtsc(Reg::R9);
  b.sub(Reg::R9, Reg::R8);
  b.mov(Reg::R14, Reg::RSI);
  b.mov(Reg::R15, Reg::R12);
  b.shl(Reg::R15, 3);
  b.add(Reg::R14, Reg::R15);
  b.store(Reg::R14, Reg::R9);
  b.add(Reg::R12, 1);
  b.cmp(Reg::R12, 256);
  b.jcc(Cond::NZ, "loop");
  b.halt();
  return b.build();
}

std::uint64_t run_tote(os::Machine& m, const GadgetProgram& g,
                       const std::array<std::uint64_t, isa::kNumRegs>& regs,
                       std::uint64_t cycle_limit) {
  const uarch::RunResult r =
      m.run_user(g.prog, regs, g.signal_handler, cycle_limit);
  const auto& tsc = r.t0().tsc;
  if (tsc.size() < 2 || tsc[1] <= tsc[0]) return 0;
  return tsc[1] - tsc[0];
}

}  // namespace whisper::core
