// TET-Spectre-V1 (extension beyond the paper's attack set): the classic
// bounds-check-bypass window carried over the Whisper channel.
//
// The paper demonstrates TET with Meltdown/MDS/RSB windows; this extension
// shows the channel composes with Spectre-V1 as well: the transient
// (in-bounds-predicted) path executes the secret-dependent Jcc, and its
// misprediction's recovery work drains into the bounds branch's own
// resteer — lengthening ToTE when the test value matches (arg-max decode,
// like TET-MD). No fault is raised, so per-probe cost is close to TET-RSB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetSpectreV1 final : public Attack {
 public:
  static constexpr int kDefaultBatches = 3;

  struct Options : AttackOptions {
    int trainings_per_probe = 4;  // in-bounds runs before each OOB probe
  };

  explicit TetSpectreV1(os::Machine& m) : TetSpectreV1(m, Options{}) {}
  TetSpectreV1(os::Machine& m, Options opt);

  /// Leak bytes at `secret_vaddr`, which must lie *past* the bounds-checked
  /// array at `array_vaddr` whose length word lives at `len_vaddr`.
  /// run(payload) plants the payload at kArrayBase + 0x80.
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t secret_vaddr,
                                               std::size_t len);
  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t secret_vaddr);

  /// Set up a victim array in the attacker space: `array_len` in-bounds
  /// bytes followed (at some distance) by the secret. Returns the base.
  static constexpr std::uint64_t kArrayBase =
      os::Machine::kDataBase + 0x10000;
  static constexpr std::uint64_t kLenAddr = os::Machine::kDataBase + 0xff00;
  static constexpr std::uint64_t kArrayLen = 16;
  /// Where run(payload) plants the secret, past the bounds-checked array.
  static constexpr std::uint64_t kSecretOffset = 0x80;

  void install_victim(os::Machine& m) const;

  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  std::uint64_t probe(std::uint64_t index, int test_value, AttackResult& r);
  std::uint8_t leak_byte_into(std::uint64_t secret_vaddr, AttackResult& r);

  int trainings_per_probe_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Max};
};

}  // namespace whisper::core
