// Shared attack types.
#pragma once

#include <cstdint>
#include <vector>

namespace whisper::core {

/// A well-known unmapped user address used to open NotPresent transient
/// windows (the `*(char*)(0x0)` of Fig. 1a) and as the Zombieload sampling
/// target. Line offset 0 so LFB sampling reads the victim value's LSB.
inline constexpr std::uint64_t kNullProbeAddress = 0x0ull;

struct AttackStats {
  std::uint64_t cycles = 0;   // simulated cycles consumed
  std::size_t probes = 0;     // gadget executions
};

}  // namespace whisper::core
