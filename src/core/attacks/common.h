// Shared attack types.
#pragma once

#include <cstdint>

namespace whisper::core {

/// A well-known unmapped user address used to open NotPresent transient
/// windows (the `*(char*)(0x0)` of Fig. 1a) and as the Zombieload sampling
/// target. Line offset 0 so LFB sampling reads the victim value's LSB.
inline constexpr std::uint64_t kNullProbeAddress = 0x0ull;

}  // namespace whisper::core
