#include "core/attacks/spectre_rsb.h"

namespace whisper::core {

TetSpectreRsb::TetSpectreRsb(os::Machine& m, Options opt)
    : m_(m), opt_(opt), gadget_(make_rsb_gadget()) {}

std::uint8_t TetSpectreRsb::leak_byte(std::uint64_t vaddr) {
  analyzer_.reset();
  const std::uint64_t start = m_.core().cycle();

  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = vaddr;

  for (int batch = 0; batch < opt_.batches; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      const std::uint64_t tote = run_tote(m_, gadget_, regs);
      analyzer_.add(tv, tote);
      ++stats_.probes;
    }
    analyzer_.end_batch();
  }

  stats_.cycles += m_.core().cycle() - start;
  return static_cast<std::uint8_t>(analyzer_.decode());
}

std::vector<std::uint8_t> TetSpectreRsb::leak(std::uint64_t vaddr,
                                              std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(leak_byte(vaddr + i));
  return out;
}

}  // namespace whisper::core
