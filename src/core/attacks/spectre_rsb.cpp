#include "core/attacks/spectre_rsb.h"

namespace whisper::core {

TetSpectreRsb::TetSpectreRsb(os::Machine& m, Options opt)
    : Attack(m, "rsb", opt), gadget_(make_rsb_gadget()) {}

std::uint8_t TetSpectreRsb::leak_byte_into(std::uint64_t vaddr,
                                           AttackResult& r) {
  analyzer_.reset();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = vaddr;

  return decode_adaptive(r, analyzer_, kDefaultBatches, [&] {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer_.add(tv, run_tote(m_, gadget_, regs));
      ++r.probes;
    }
  });
}

void TetSpectreRsb::execute(std::span<const std::uint8_t> payload,
                            AttackResult& r) {
  m_.poke_bytes(kSecretBase, payload);
  r.bytes.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i)
    r.bytes.push_back(leak_byte_into(kSecretBase + i, r));
}

std::uint8_t TetSpectreRsb::leak_byte(std::uint64_t vaddr) {
  AttackResult scratch;
  return leak_byte_into(vaddr, scratch);
}

std::vector<std::uint8_t> TetSpectreRsb::leak(std::uint64_t vaddr,
                                              std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(leak_byte(vaddr + i));
  return out;
}

}  // namespace whisper::core
