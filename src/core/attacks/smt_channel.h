// §4.4: covert channel between SMT siblings. The trojan encodes '1' as a
// suppressed page fault — the resulting pipeline flush monopolises the
// shared front end — and '0' as plain computation; the spy times a nop loop
// and thresholds the loop time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"
#include "stats/error_rate.h"
#include "stats/rng.h"

namespace whisper::core {

class SmtCovertChannel {
 public:
  struct Options {
    int spy_iters = 48;      // nop-loop iterations per bit slot
    int calibration_bits = 16;  // known preamble used to set the threshold
    /// Maximum random start skew between trojan and spy per bit slot, in
    /// trojan nops. Real SMT channels cannot synchronise perfectly; at high
    /// symbol rates the skew eats into the spy's window and produces the
    /// paper's speed/error trade-off (§4.4: 268 KB/s at 28% error).
    int start_skew_max = 0;
    /// Repetition code: send each bit this many times and majority-decode.
    /// The paper leaves "speed up with high accuracy" to future work; this
    /// is the obvious first step — it buys accuracy back from the skewed
    /// high-rate regime at a linear rate cost.
    int repetition = 1;
  };

  explicit SmtCovertChannel(os::Machine& m) : SmtCovertChannel(m, Options{}) {}
  SmtCovertChannel(os::Machine& m, Options opt);

  /// Transmit bytes trojan→spy; returns throughput and error rate
  /// (§4.4 reports 1 B/s prototype and 268 KB/s with SecSMT's harness).
  [[nodiscard]] stats::ChannelReport transmit(
      std::span<const std::uint8_t> bytes);

  /// Spy loop time for a single bit sent by the trojan (for calibration
  /// plots and tests).
  [[nodiscard]] std::uint64_t measure_bit(bool bit);

  [[nodiscard]] std::uint64_t threshold() const noexcept {
    return threshold_;
  }
  /// SMT slot measurements taken so far (calibration included).
  [[nodiscard]] std::size_t probes() const noexcept { return probes_; }

 private:
  void calibrate();

  os::Machine& m_;
  Options opt_;
  isa::Program spy_;
  GadgetProgram trojan_one_;
  GadgetProgram trojan_zero_;
  std::uint64_t threshold_ = 0;
  std::size_t probes_ = 0;
  stats::Xoshiro256 rng_;
};

}  // namespace whisper::core
