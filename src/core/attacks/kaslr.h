// TET-KASLR (paper §4.5): derandomise the kernel image base by probing the
// 512 candidate slots of the KASLR window with the ToTE of an illegal
// access. On the modelled Intel parts a *mapped* (even supervisor-only)
// target completes a short walk and fills the TLB, while an unmapped target
// replays the walk — mapped probes are measurably shorter.
//
// Modes:
//  * plain KASLR: probe each slot base directly;
//  * KPTI: probe slot_base + 0xe00000, the trampoline remnant KPTI leaves
//    mapped in the user tables;
//  * FLARE: single-probe timing is uniform (dummy mappings complete a full
//    walk), so the attack switches to a double probe — the second, un-
//    evicted probe hits the TLB only for genuinely mapped targets, because
//    FLARE's reserved dummies never fill it (DESIGN.md §1.4);
//  * Docker: identical probing; namespaces do not change the µarch (§4.5).
//
// Decoding is round-major: every round sweeps all 512 slots, classifies
// them with the fastest-vs-median threshold and votes for the first mapped
// slot; the plurality of round votes wins. Per-round voting (rather than a
// single min-over-rounds pass) is what makes the adaptive escalation of
// AttackOptions::adaptive meaningful under interference — a DVFS downclock
// can make *unmapped* probes of one round look fast, but it skews that
// round's whole sweep, not the cross-round vote.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetKaslr final : public Attack {
 public:
  static constexpr int kDefaultRounds = 3;

  struct Options : AttackOptions {
    int rounds = kDefaultRounds;      // sweep rounds (base `batches` wins
                                      // when set — the registry knob)
    std::optional<bool> double_probe; // default: auto (on under FLARE)
  };

  explicit TetKaslr(os::Machine& m) : TetKaslr(m, Options{}) {}
  TetKaslr(os::Machine& m, Options opt);

  /// Break KASLR: the payload is ignored (there is no byte stream to move);
  /// the result's found_slot/found_base/true_base/slot_scores carry the
  /// outcome and `confidence` the cross-round vote margin.
  using Attack::run;
  [[nodiscard]] AttackResult run() { return Attack::run({}); }

  /// ToTE of a single probe at `vaddr` (after TLB eviction) — exposed for
  /// calibration experiments and the PMU toolset scenarios.
  [[nodiscard]] std::uint64_t probe_once(std::uint64_t vaddr,
                                         bool evict = true);

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  /// One full sweep: per-slot scores of this round (max() = failed probe).
  std::vector<std::uint64_t> sweep_round(std::uint64_t probe_offset,
                                         bool double_probe, AttackResult& r);
  /// The §4.5 rule: first slot classified mapped by the fastest-vs-median
  /// threshold.
  [[nodiscard]] static int first_mapped_slot(
      const std::vector<std::uint64_t>& scores);

  int rounds_;
  std::optional<bool> double_probe_;
  WindowKind window_;
  GadgetProgram gadget_;
  bool jcc_parity_ = false;  // alternate the attacker-driven Jcc direction
};

}  // namespace whisper::core
