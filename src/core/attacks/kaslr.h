// TET-KASLR (paper §4.5): derandomise the kernel image base by probing the
// 512 candidate slots of the KASLR window with the ToTE of an illegal
// access. On the modelled Intel parts a *mapped* (even supervisor-only)
// target completes a short walk and fills the TLB, while an unmapped target
// replays the walk — mapped probes are measurably shorter.
//
// Modes:
//  * plain KASLR: probe each slot base directly;
//  * KPTI: probe slot_base + 0xe00000, the trampoline remnant KPTI leaves
//    mapped in the user tables;
//  * FLARE: single-probe timing is uniform (dummy mappings complete a full
//    walk), so the attack switches to a double probe — the second, un-
//    evicted probe hits the TLB only for genuinely mapped targets, because
//    FLARE's reserved dummies never fill it (DESIGN.md §1.4);
//  * Docker: identical probing; namespaces do not change the µarch (§4.5).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetKaslr {
 public:
  struct Options {
    int rounds = 3;                   // probes per slot (min is kept)
    std::optional<bool> double_probe; // default: auto (on under FLARE)
    std::optional<WindowKind> window;
  };

  struct Result {
    bool success = false;
    int found_slot = -1;
    std::uint64_t found_base = 0;
    std::uint64_t true_base = 0;
    std::size_t probes = 0;
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    /// Per-slot scores (ToTE, lower = mapped candidate) for plotting.
    std::vector<std::uint64_t> slot_scores;
  };

  explicit TetKaslr(os::Machine& m) : TetKaslr(m, Options{}) {}
  TetKaslr(os::Machine& m, Options opt);

  [[nodiscard]] Result run();

  /// ToTE of a single probe at `vaddr` (after TLB eviction) — exposed for
  /// calibration experiments and the PMU toolset scenarios.
  [[nodiscard]] std::uint64_t probe_once(std::uint64_t vaddr,
                                         bool evict = true);

 private:
  os::Machine& m_;
  Options opt_;
  WindowKind window_;
  GadgetProgram gadget_;
  bool jcc_parity_ = false;  // alternate the attacker-driven Jcc direction
};

}  // namespace whisper::core
