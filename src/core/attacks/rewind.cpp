#include "core/attacks/rewind.h"

#include <algorithm>

#include "isa/builder.h"

namespace whisper::core {

namespace {

isa::Program make_victim_touch() {
  isa::ProgramBuilder b;
  b.load_byte(isa::Reg::RAX, isa::Reg::RDI);
  b.halt();
  return b.build();
}

}  // namespace

SpectreRewind::SpectreRewind(os::Machine& m, Options opt)
    : Attack(m, "rewind", opt),
      trainings_per_probe_(opt.trainings_per_probe),
      gadget_(make_rewind_gadget(opt.receiver_divs)),
      touch_(make_victim_touch()) {
  install_victim(m_);
}

void SpectreRewind::install_victim(os::Machine& m) const {
  m.poke64(kLenAddr, kArrayLen);
  for (std::uint64_t i = 0; i < kArrayLen; ++i)
    m.poke8(kArrayBase + i, static_cast<std::uint8_t>(i));
}

std::uint64_t SpectreRewind::probe(std::uint64_t index, int test_value,
                                   AttackResult& r) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RDI)] = kLenAddr;
  regs[static_cast<std::size_t>(isa::Reg::RSI)] = index;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = kArrayBase;
  regs[static_cast<std::size_t>(isa::Reg::RBX)] =
      static_cast<std::uint64_t>(test_value);
  ++r.probes;
  return run_tote(m_, gadget_, regs);
}

std::uint8_t SpectreRewind::leak_byte_into(std::uint64_t secret_vaddr,
                                           AttackResult& r) {
  analyzer_.reset();
  const std::uint64_t oob_index = secret_vaddr - kArrayBase;

  int round = 0;
  const auto run_batch = [&] {
    std::array<std::uint64_t, isa::kNumRegs> victim{};
    victim[static_cast<std::size_t>(isa::Reg::RDI)] = secret_vaddr;

    for (int tv = 0; tv <= 255; ++tv) {
      // Victim activity: the secret line must be cache-resident for the
      // transient FDIV to contend inside the window. Re-touched per test
      // value because prefetcher noise can evict the line mid-batch.
      (void)m_.run_user(touch_, victim);
      // Train the bounds branch in-bounds (predicted not-taken). The
      // training count is jittered per probe: with a fixed cadence every
      // probe's bounds check is fetched at the same gshare history phase,
      // so one PHT entry decides every window and a single poisoned
      // counter kills the whole attack. Rotating the phase spreads the
      // predictions over many entries, where the 4:1 not-taken:taken
      // update ratio keeps the window reopening.
      const int jitter = (tv * 7 + round * 13) % 3;
      std::uint64_t baseline = ~std::uint64_t{0};
      for (int t = 0; t < trainings_per_probe_ + jitter; ++t)
        baseline = std::min(
            baseline, probe(static_cast<std::uint64_t>(t) % kArrayLen, tv, r));
      // …then probe out of bounds: the divider-contending FDIV runs
      // transiently, and only a matching test value makes it slow. A probe
      // that a timer interrupt lands in carries the handler's ~2500 cycles
      // on top of a ~22-cycle signal; against the per-value mean one such
      // outlier outweighs every clean sample, so anything far above this
      // value's own in-bounds training floor is discarded.
      const std::uint64_t tote = probe(oob_index, tv, r);
      if (tote <= baseline + kOutlierSlack) analyzer_.add(tv, tote);
    }
    ++round;
  };
  // Mean decode, not batch votes: a probe's window only opens when its
  // gshare phase lands on an unpoisoned PHT entry, so the matching value
  // may stand out in a minority of batches — enough to dominate the
  // per-value mean, but easily outvoted batch-by-batch.
  return decode_adaptive(r, analyzer_, kDefaultBatches, run_batch,
                         DecodeBy::Mean);
}

void SpectreRewind::execute(std::span<const std::uint8_t> payload,
                            AttackResult& r) {
  m_.poke_bytes(kArrayBase + kSecretOffset, payload);
  r.bytes.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i)
    r.bytes.push_back(leak_byte_into(kArrayBase + kSecretOffset + i, r));
}

std::uint8_t SpectreRewind::leak_byte(std::uint64_t secret_vaddr) {
  AttackResult scratch;
  return leak_byte_into(secret_vaddr, scratch);
}

std::vector<std::uint8_t> SpectreRewind::leak(std::uint64_t secret_vaddr,
                                              std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(leak_byte(secret_vaddr + i));
  return out;
}

}  // namespace whisper::core
