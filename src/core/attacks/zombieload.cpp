#include "core/attacks/zombieload.h"

namespace whisper::core {

TetZombieload::TetZombieload(os::Machine& m, Options opt)
    : Attack(m, "zbl", opt),
      window_(opt.window.value_or(preferred_window(m.config()))),
      gadget_(make_tet_gadget({.window = window_,
                               .source = SecretSource::FaultingLoad})) {}

std::uint8_t TetZombieload::leak_byte_into(std::uint8_t victim_byte,
                                           AttackResult& r) {
  analyzer_.reset();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  // Faulting load on an unmapped address: the assisted load samples the LFB.
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = kNullProbeAddress;

  return decode_adaptive(r, analyzer_, kDefaultBatches, [&] {
    for (int tv = 0; tv <= 255; ++tv) {
      // The victim touches its secret; the value is now in flight.
      m_.victim_touch(victim_byte);
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer_.add(tv, run_tote(m_, gadget_, regs));
      ++r.probes;
    }
  });
}

void TetZombieload::execute(std::span<const std::uint8_t> payload,
                            AttackResult& r) {
  r.bytes.reserve(payload.size());
  for (const std::uint8_t b : payload)
    r.bytes.push_back(leak_byte_into(b, r));
}

std::uint8_t TetZombieload::leak_byte(std::uint8_t victim_byte) {
  AttackResult scratch;
  return leak_byte_into(victim_byte, scratch);
}

std::vector<std::uint8_t> TetZombieload::leak(
    std::span<const std::uint8_t> victim_stream) {
  std::vector<std::uint8_t> out;
  out.reserve(victim_stream.size());
  for (std::uint8_t b : victim_stream) out.push_back(leak_byte(b));
  return out;
}

}  // namespace whisper::core
