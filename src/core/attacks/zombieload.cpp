#include "core/attacks/zombieload.h"

namespace whisper::core {

TetZombieload::TetZombieload(os::Machine& m, Options opt)
    : m_(m), opt_(opt),
      window_(opt.window.value_or(preferred_window(m.config()))),
      gadget_(make_tet_gadget({.window = window_,
                               .source = SecretSource::FaultingLoad})) {}

std::uint8_t TetZombieload::leak_byte(std::uint8_t victim_byte) {
  analyzer_.reset();
  const std::uint64_t start = m_.core().cycle();

  std::array<std::uint64_t, isa::kNumRegs> regs{};
  // Faulting load on an unmapped address: the assisted load samples the LFB.
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = kNullProbeAddress;

  for (int batch = 0; batch < opt_.batches; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      // The victim touches its secret; the value is now in flight.
      m_.victim_touch(victim_byte);
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      const std::uint64_t tote = run_tote(m_, gadget_, regs);
      analyzer_.add(tv, tote);
      ++stats_.probes;
    }
    analyzer_.end_batch();
  }

  stats_.cycles += m_.core().cycle() - start;
  return static_cast<std::uint8_t>(analyzer_.decode());
}

std::vector<std::uint8_t> TetZombieload::leak(
    std::span<const std::uint8_t> victim_stream) {
  std::vector<std::uint8_t> out;
  out.reserve(victim_stream.size());
  for (std::uint8_t b : victim_stream) out.push_back(leak_byte(b));
  return out;
}

}  // namespace whisper::core
