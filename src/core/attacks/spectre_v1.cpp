#include "core/attacks/spectre_v1.h"

namespace whisper::core {

TetSpectreV1::TetSpectreV1(os::Machine& m, Options opt)
    : Attack(m, "v1", opt),
      trainings_per_probe_(opt.trainings_per_probe),
      gadget_(make_spectre_v1_gadget()) {
  install_victim(m_);
}

void TetSpectreV1::install_victim(os::Machine& m) const {
  m.poke64(kLenAddr, kArrayLen);
  for (std::uint64_t i = 0; i < kArrayLen; ++i)
    m.poke8(kArrayBase + i, static_cast<std::uint8_t>(i));
}

std::uint64_t TetSpectreV1::probe(std::uint64_t index, int test_value,
                                  AttackResult& r) {
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RDI)] = kLenAddr;
  regs[static_cast<std::size_t>(isa::Reg::RSI)] = index;
  regs[static_cast<std::size_t>(isa::Reg::RDX)] = kArrayBase;
  regs[static_cast<std::size_t>(isa::Reg::RBX)] =
      static_cast<std::uint64_t>(test_value);
  ++r.probes;
  return run_tote(m_, gadget_, regs);
}

std::uint8_t TetSpectreV1::leak_byte_into(std::uint64_t secret_vaddr,
                                          AttackResult& r) {
  analyzer_.reset();
  const std::uint64_t oob_index = secret_vaddr - kArrayBase;

  return decode_adaptive(r, analyzer_, kDefaultBatches, [&] {
    for (int tv = 0; tv <= 255; ++tv) {
      // Train the bounds branch in-bounds (predicted not-taken)…
      for (int t = 0; t < trainings_per_probe_; ++t)
        (void)probe(static_cast<std::uint64_t>(t) % kArrayLen, tv, r);
      // …then probe out of bounds: the access runs transiently.
      analyzer_.add(tv, probe(oob_index, tv, r));
    }
  });
}

void TetSpectreV1::execute(std::span<const std::uint8_t> payload,
                           AttackResult& r) {
  m_.poke_bytes(kArrayBase + kSecretOffset, payload);
  r.bytes.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i)
    r.bytes.push_back(leak_byte_into(kArrayBase + kSecretOffset + i, r));
}

std::uint8_t TetSpectreV1::leak_byte(std::uint64_t secret_vaddr) {
  AttackResult scratch;
  return leak_byte_into(secret_vaddr, scratch);
}

std::vector<std::uint8_t> TetSpectreV1::leak(std::uint64_t secret_vaddr,
                                             std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(leak_byte(secret_vaddr + i));
  return out;
}

}  // namespace whisper::core
