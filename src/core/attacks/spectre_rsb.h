// TET-Spectre-V5-RSB (paper §4.3.3, Listing 1): the gadget overwrites its
// own return address and flushes the stack slot; the RSB-predicted return
// path executes the secret-dependent Jcc transiently. A triggered
// misprediction resolves the pending return early, shortening ToTE
// (arg-min decode, following the paper's prose — see DESIGN.md on the
// Listing-1 argmax discrepancy). No fault is ever raised, which is why this
// variant reaches KB/s throughput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetSpectreRsb final : public Attack {
 public:
  static constexpr int kDefaultBatches = 2;

  /// Where run(payload) plants the secret: gadget-reachable attacker data,
  /// standing in for the sandboxed-but-mapped secret of the Spectre model.
  static constexpr std::uint64_t kSecretBase =
      os::Machine::kDataBase + 0x1000;

  struct Options : AttackOptions {};

  explicit TetSpectreRsb(os::Machine& m, Options opt = Options{});

  /// Leak bytes the gadget can architecturally reach but the attacker's
  /// sandbox cannot (the Spectre threat model): `vaddr` is in the gadget's
  /// address space.
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t vaddr,
                                               std::size_t len);
  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t vaddr);

  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  std::uint8_t leak_byte_into(std::uint64_t vaddr, AttackResult& r);

  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Min};
};

}  // namespace whisper::core
