// TET-Spectre-V5-RSB (paper §4.3.3, Listing 1): the gadget overwrites its
// own return address and flushes the stack slot; the RSB-predicted return
// path executes the secret-dependent Jcc transiently. A triggered
// misprediction resolves the pending return early, shortening ToTE
// (arg-min decode, following the paper's prose — see DESIGN.md on the
// Listing-1 argmax discrepancy). No fault is ever raised, which is why this
// variant reaches KB/s throughput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetSpectreRsb {
 public:
  struct Options {
    int batches = 2;
  };

  explicit TetSpectreRsb(os::Machine& m) : TetSpectreRsb(m, Options{}) {}
  TetSpectreRsb(os::Machine& m, Options opt);

  /// Leak bytes the gadget can architecturally reach but the attacker's
  /// sandbox cannot (the Spectre threat model): `vaddr` is in the gadget's
  /// address space.
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t vaddr,
                                               std::size_t len);
  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t vaddr);

  [[nodiscard]] const AttackStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 private:
  os::Machine& m_;
  Options opt_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Min};
  AttackStats stats_;
};

}  // namespace whisper::core
