#include "core/attacks/meltdown.h"

namespace whisper::core {

TetMeltdown::TetMeltdown(os::Machine& m, Options opt)
    : Attack(m, "md", opt),
      // Classic Meltdown suppresses the fault with a signal handler; TSX is
      // an opt-in acceleration (the paper's transient_begin offers both).
      window_(opt.window.value_or(WindowKind::Signal)),
      gadget_(make_tet_gadget({.window = window_,
                               .source = SecretSource::FaultingLoad})) {}

std::uint8_t TetMeltdown::leak_byte_into(std::uint64_t kvaddr,
                                         AttackResult& r) {
  analyzer_.reset();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = kvaddr;

  return decode_adaptive(r, analyzer_, kDefaultBatches, [&] {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      analyzer_.add(tv, run_tote(m_, gadget_, regs));
      ++r.probes;
    }
  });
}

void TetMeltdown::execute(std::span<const std::uint8_t> payload,
                          AttackResult& r) {
  const std::uint64_t kvaddr = m_.plant_kernel_secret(payload);
  r.bytes.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i)
    r.bytes.push_back(leak_byte_into(kvaddr + i, r));
}

std::uint8_t TetMeltdown::leak_byte(std::uint64_t kvaddr) {
  AttackResult scratch;
  return leak_byte_into(kvaddr, scratch);
}

std::vector<std::uint8_t> TetMeltdown::leak(std::uint64_t kvaddr,
                                            std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(leak_byte(kvaddr + i));
  return out;
}

}  // namespace whisper::core
