#include "core/attacks/meltdown.h"

namespace whisper::core {

TetMeltdown::TetMeltdown(os::Machine& m, Options opt)
    : m_(m), opt_(opt),
      // Classic Meltdown suppresses the fault with a signal handler; TSX is
      // an opt-in acceleration (the paper's transient_begin offers both).
      window_(opt.window.value_or(WindowKind::Signal)),
      gadget_(make_tet_gadget({.window = window_,
                               .source = SecretSource::FaultingLoad})) {}

std::uint8_t TetMeltdown::leak_byte(std::uint64_t kvaddr) {
  analyzer_.reset();
  const std::uint64_t start = m_.core().cycle();

  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = kvaddr;

  for (int batch = 0; batch < opt_.batches; ++batch) {
    for (int tv = 0; tv <= 255; ++tv) {
      regs[static_cast<std::size_t>(isa::Reg::RBX)] =
          static_cast<std::uint64_t>(tv);
      const std::uint64_t tote = run_tote(m_, gadget_, regs);
      analyzer_.add(tv, tote);
      ++stats_.probes;
    }
    analyzer_.end_batch();
  }

  stats_.cycles += m_.core().cycle() - start;
  return static_cast<std::uint8_t>(analyzer_.decode());
}

std::vector<std::uint8_t> TetMeltdown::leak(std::uint64_t kvaddr,
                                            std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(leak_byte(kvaddr + i));
  return out;
}

}  // namespace whisper::core
