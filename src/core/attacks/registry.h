// Name-keyed attack registry: the one place that knows how to build each
// attack class. whisper_cli's dispatch, the runner's trial loop and the
// bench harnesses all construct attacks through make_attack(), so a new
// attack registered here appears everywhere at once (--list-attacks, the
// matrix command, noise_sweep, ...).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/attacks/attack.h"

namespace whisper::core {

struct AttackInfo {
  std::string name;         // CLI spelling: "cc", "md", "zbl", ...
  std::string description;  // one line for --list-attacks
  /// True when run(payload) moves a byte stream (all attacks but KASLR);
  /// callers use this to decide whether to generate a payload.
  bool channel = true;
  std::function<std::unique_ptr<Attack>(os::Machine&, const AttackOptions&)>
      make;
};

/// The registered attacks: the paper's Table 2 column order for the TET
/// set, then the extensions (cc, md, zbl, rsb, v1, rewind, kaslr).
[[nodiscard]] const std::vector<AttackInfo>& attack_registry();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const AttackInfo* find_attack(std::string_view name);

/// Registered names, in registry order.
[[nodiscard]] std::vector<std::string> attack_names();

/// Construct `name` on `m` with the shared options (class-specific knobs
/// keep their defaults). Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Attack> make_attack(
    std::string_view name, os::Machine& m, const AttackOptions& opt = {});

}  // namespace whisper::core
