#include "core/attacks/smt_channel.h"

namespace whisper::core {

SmtCovertChannel::SmtCovertChannel(os::Machine& m, Options opt)
    : m_(m), opt_(opt), spy_(make_smt_spy(opt.spy_iters)),
      trojan_one_(make_smt_trojan(true)), trojan_zero_(make_smt_trojan(false)),
      rng_(m.config().seed ^ 0x5a7c4a11ull) {}

std::uint64_t SmtCovertChannel::measure_bit(bool bit) {
  // Imperfect sender/receiver synchronisation: the trojan's action lands a
  // random distance into the spy's slot. When the slot is short, late
  // trojans miss it entirely — the paper's error floor at high rates.
  GadgetProgram trojan = bit ? trojan_one_ : trojan_zero_;
  if (opt_.start_skew_max > 0) {
    const int skew = static_cast<int>(rng_.next_below(
        static_cast<std::uint64_t>(opt_.start_skew_max) + 1));
    trojan = make_smt_trojan_skewed(bit, skew);
  }
  std::array<std::uint64_t, isa::kNumRegs> spy_regs{};
  std::array<std::uint64_t, isa::kNumRegs> trojan_regs{};
  trojan_regs[static_cast<std::size_t>(isa::Reg::RCX)] = kNullProbeAddress;

  const uarch::RunResult r = m_.run_smt(spy_, spy_regs, trojan.prog,
                                        trojan_regs, -1,
                                        trojan.signal_handler);
  ++probes_;
  const auto& tsc = r.thread[0].tsc;
  if (tsc.size() < 2 || tsc[1] <= tsc[0]) return 0;
  return tsc[1] - tsc[0];
}

void SmtCovertChannel::calibrate() {
  std::uint64_t sum0 = 0, sum1 = 0;
  int n = std::max(1, opt_.calibration_bits / 2);
  for (int i = 0; i < n; ++i) {
    sum0 += measure_bit(false);
    sum1 += measure_bit(true);
  }
  const std::uint64_t mean0 = sum0 / static_cast<std::uint64_t>(n);
  const std::uint64_t mean1 = sum1 / static_cast<std::uint64_t>(n);
  threshold_ = (mean0 + mean1) / 2;
}

stats::ChannelReport SmtCovertChannel::transmit(
    std::span<const std::uint8_t> bytes) {
  const std::uint64_t start = m_.core().cycle();
  if (threshold_ == 0) calibrate();

  const int reps = std::max(1, opt_.repetition);
  std::vector<std::uint8_t> received;
  received.reserve(bytes.size());
  for (std::uint8_t b : bytes) {
    std::uint8_t out = 0;
    for (int bit = 7; bit >= 0; --bit) {
      const bool sent = (b >> bit) & 1;
      int votes = 0;
      for (int r = 0; r < reps; ++r)
        if (measure_bit(sent) > threshold_) ++votes;
      const bool decoded = votes * 2 > reps;
      out = static_cast<std::uint8_t>((out << 1) | (decoded ? 1 : 0));
    }
    received.push_back(out);
  }

  const std::uint64_t cycles = m_.core().cycle() - start;
  return stats::evaluate_channel(bytes, received, cycles, m_.config().ghz);
}

}  // namespace whisper::core
