#include "core/attacks/registry.h"

#include <stdexcept>

#include "core/attacks/kaslr.h"
#include "core/attacks/meltdown.h"
#include "core/attacks/rewind.h"
#include "core/attacks/spectre_rsb.h"
#include "core/attacks/spectre_v1.h"
#include "core/attacks/zombieload.h"
#include "core/covert_channel.h"

namespace whisper::core {

namespace {

/// Build a derived Options aggregate with the shared base overridden.
template <typename Options>
Options with_base(const AttackOptions& base) {
  Options o{};
  static_cast<AttackOptions&>(o) = base;
  return o;
}

template <typename Atk>
std::unique_ptr<Attack> construct(os::Machine& m, const AttackOptions& opt) {
  return std::make_unique<Atk>(m, with_base<typename Atk::Options>(opt));
}

}  // namespace

const std::vector<AttackInfo>& attack_registry() {
  static const std::vector<AttackInfo> registry = {
      {"cc", "TET covert channel over shared memory (§4.1)", true,
       construct<TetCovertChannel>},
      {"md", "TET-Meltdown: kernel memory across the privilege boundary "
             "(§4.3.1)",
       true, construct<TetMeltdown>},
      {"zbl", "TET-Zombieload: stale LFB data from a sibling victim "
              "(§4.3.2)",
       true, construct<TetZombieload>},
      {"rsb", "TET-Spectre-RSB: return-address mistraining, no fault "
              "(§4.3.3)",
       true, construct<TetSpectreRsb>},
      {"v1", "TET-Spectre-V1: bounds-check bypass (extension)", true,
       construct<TetSpectreV1>},
      {"rewind", "SpectreRewind: transient FDIV contention on the "
                 "non-pipelined divider, no cache footprint (extension)",
       true, construct<SpectreRewind>},
      {"kaslr", "TET-KASLR: derandomise the kernel image base (§4.5)", false,
       construct<TetKaslr>},
  };
  return registry;
}

const AttackInfo* find_attack(std::string_view name) {
  for (const AttackInfo& info : attack_registry())
    if (info.name == name) return &info;
  return nullptr;
}

std::vector<std::string> attack_names() {
  std::vector<std::string> names;
  names.reserve(attack_registry().size());
  for (const AttackInfo& info : attack_registry()) names.push_back(info.name);
  return names;
}

std::unique_ptr<Attack> make_attack(std::string_view name, os::Machine& m,
                                    const AttackOptions& opt) {
  const AttackInfo* info = find_attack(name);
  if (!info) {
    std::string msg = "unknown attack '" + std::string(name) +
                      "' (registered: ";
    const std::vector<std::string> names = attack_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) msg += ", ";
      msg += names[i];
    }
    throw std::invalid_argument(msg + ")");
  }
  return info->make(m, opt);
}

}  // namespace whisper::core
