#include "core/attacks/attack.h"

#include <algorithm>

namespace whisper::core {

void Attack::checkpoint() {
  if (opt_.checkpoint_hook) opt_.checkpoint_hook(m_);
  if (opt_.cycle_budget != 0) {
    const std::uint64_t used = m_.core().cycle() - run_start_cycle_;
    if (used > opt_.cycle_budget)
      throw BudgetExceeded(
          BudgetExceeded::Kind::kCycles,
          "attack '" + name_ + "': simulated-cycle budget exceeded (" +
              std::to_string(used) + " > " +
              std::to_string(opt_.cycle_budget) + " cycles)");
  }
  if (opt_.wall_budget_seconds > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start_wall_)
            .count();
    if (elapsed > opt_.wall_budget_seconds)
      throw BudgetExceeded(
          BudgetExceeded::Kind::kWallClock,
          "attack '" + name_ + "': wall-clock watchdog fired after " +
              std::to_string(elapsed) + "s (budget " +
              std::to_string(opt_.wall_budget_seconds) + "s)");
  }
}

AttackResult Attack::run(std::span<const std::uint8_t> payload) {
  AttackResult r;
  r.attack = name_;

  const std::uint64_t start = m_.core().cycle();
  run_start_cycle_ = start;
  run_start_wall_ = std::chrono::steady_clock::now();
  checkpoint();
  execute(payload, r);
  r.cycles = m_.core().cycle() - start;
  r.seconds = m_.seconds(r.cycles);

  if (!payload.empty()) {
    for (std::size_t i = 0; i < payload.size(); ++i)
      if (i >= r.bytes.size() || r.bytes[i] != payload[i]) ++r.byte_errors;
    r.success = r.byte_errors == 0;
  }
  return r;
}

std::uint8_t Attack::decode_adaptive(AttackResult& r, ArgmaxAnalyzer& an,
                                     int initial,
                                     const std::function<void()>& run_batch,
                                     DecodeBy by) {
  const auto conf = [&] {
    return by == DecodeBy::Mean ? an.mean_confidence() : an.confidence();
  };
  const int n0 = std::max(1, opt_.batches.value_or(initial));
  int done = 0;
  const auto run_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      checkpoint();
      run_batch();
      an.end_batch();
      ++done;
    }
  };

  run_n(n0);
  if (opt_.adaptive) {
    const int budget =
        opt_.batch_budget > 0 ? std::max(opt_.batch_budget, n0) : 8 * n0;
    // Escalate by doubling the total each pass — confidence either clears
    // the threshold on the way or the budget bounds the spend.
    while (conf() < opt_.confidence_threshold && done < budget)
      run_n(std::min(done, budget - done));
    if (conf() < opt_.confidence_threshold) ++r.gave_up;
  }

  r.confidence = std::min(r.confidence, conf());
  r.tote.merge(an.tote_histogram());
  return static_cast<std::uint8_t>(by == DecodeBy::Mean ? an.decode_by_mean()
                                                        : an.decode());
}

}  // namespace whisper::core
