// TET-Zombieload (paper §4.3.2): sample stale line-fill-buffer data from a
// victim on the same physical core, transmitting it over the Whisper channel.
// Contrary to TET-MD, a triggered Jcc *shortens* the window (the assist
// squashes early), so decoding uses arg-min.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetZombieload final : public Attack {
 public:
  static constexpr int kDefaultBatches = 6;

  struct Options : AttackOptions {};

  explicit TetZombieload(os::Machine& m, Options opt = Options{});

  /// Unified entry: run(payload) treats the payload as the byte stream a
  /// co-resident victim repeatedly touches, and samples it from the LFB.

  /// Typed conveniences (the harness injects each victim byte into the LFB
  /// before every probe — standing in for the victim loop of the real
  /// attack).
  [[nodiscard]] std::vector<std::uint8_t> leak(
      std::span<const std::uint8_t> victim_stream);
  [[nodiscard]] std::uint8_t leak_byte(std::uint8_t victim_byte);

  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  std::uint8_t leak_byte_into(std::uint8_t victim_byte, AttackResult& r);

  WindowKind window_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Min};
};

}  // namespace whisper::core
