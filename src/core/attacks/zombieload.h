// TET-Zombieload (paper §4.3.2): sample stale line-fill-buffer data from a
// victim on the same physical core, transmitting it over the Whisper channel.
// Contrary to TET-MD, a triggered Jcc *shortens* the window (the assist
// squashes early), so decoding uses arg-min.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetZombieload {
 public:
  struct Options {
    int batches = 6;
    std::optional<WindowKind> window;
  };

  explicit TetZombieload(os::Machine& m) : TetZombieload(m, Options{}) {}
  TetZombieload(os::Machine& m, Options opt);

  /// Recover the byte stream a victim repeatedly touches. The harness
  /// injects each victim byte into the LFB before every probe — standing in
  /// for the co-resident victim loop of the real attack.
  [[nodiscard]] std::vector<std::uint8_t> leak(
      std::span<const std::uint8_t> victim_stream);
  [[nodiscard]] std::uint8_t leak_byte(std::uint8_t victim_byte);

  [[nodiscard]] const AttackStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 private:
  os::Machine& m_;
  Options opt_;
  WindowKind window_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Min};
  AttackStats stats_;
};

}  // namespace whisper::core
