// The unified attack interface.
//
// Every ToTE attack (TET-CC, TET-MD, TET-ZBL, TET-RSB, TET-V1, TET-KASLR)
// derives from core::Attack and reports through one AttackResult: callers —
// the runner, the CLI, the bench harnesses — construct any attack by name
// via core::make_attack() (attacks/registry.h) and never touch a per-class
// result type.
//
//   auto atk = core::make_attack("md", m, {.adaptive = true});
//   const core::AttackResult r = atk->run(secret_bytes);
//   // r.bytes holds the leaked copy, r.confidence the weakest byte's vote
//   // margin, r.gave_up how many bytes exhausted their batch budget.
//
// run() plants the payload where the class's threat model says the secret
// lives (kernel memory for MD, the victim's LFB stream for ZBL, gadget-
// reachable data for RSB/V1, the shared page for CC; KASLR ignores it),
// leaks it back, and accounts wall time once, centrally — per-class timing
// code used to diverge (the V1/RSB paths never filled `seconds`).
//
// Adaptive decoding (opt-in via AttackOptions::adaptive): each byte starts
// at the class's default batch count and escalates exponentially until the
// ArgmaxAnalyzer vote margin clears `confidence_threshold` or the batch
// budget is spent — a byte that never converges is counted in `gave_up`
// instead of being reported as silently wrong.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/gadgets.h"
#include "os/machine.h"
#include "stats/histogram.h"

namespace whisper::core {

/// Knobs shared by every attack. Derived classes embed this as the base of
/// their own Options aggregate and add class-specific knobs; unset optionals
/// fall back to the class's defaults. Note the C++20 aggregate rule: with a
/// base class in the aggregate, designated initializers can only name the
/// *derived* members — base overrides take an inner braced list,
/// `Options{{.batches = 3}, .trainings_per_probe = 2}`.
struct AttackOptions {
  /// Argmax batches per byte (TET-KASLR: probe rounds per sweep).
  std::optional<int> batches;
  /// Transient-window kind override (TSX vs signal), where the class
  /// supports both.
  std::optional<WindowKind> window;

  /// Adaptive escalation: retry each byte with exponentially more batches
  /// until the vote-margin confidence clears `confidence_threshold` or the
  /// total reaches `batch_budget`.
  bool adaptive = false;
  double confidence_threshold = 0.5;
  /// Total batch cap per byte under `adaptive`; 0 = 8× the initial count.
  int batch_budget = 0;

  /// Fault-tolerance budgets, checked at every checkpoint() run() and the
  /// decode loops hit (per batch for channels, per sweep round for KASLR).
  /// A breach throws BudgetExceeded out of run() — the runner turns it into
  /// a structured TrialError instead of letting a runaway generated program
  /// wedge a worker. 0 disables the check.
  std::uint64_t cycle_budget = 0;        // simulated cycles per run()
  double wall_budget_seconds = 0.0;      // host wall clock per run()
  /// Test/fault-injection hook invoked at every checkpoint before the
  /// budget checks (whisper::fault uses it to stall the simulated clock or
  /// sleep the host thread mid-attack). Null in normal operation.
  std::function<void(os::Machine&)> checkpoint_hook;
};

/// Thrown out of Attack::run() when a checkpoint finds a budget breached.
/// kind() says which clock: the simulated cycle counter (a runaway or
/// stalled trial) or host wall time (the watchdog).
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kCycles, kWallClock };
  BudgetExceeded(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// What any attack reports. Channel attacks fill bytes/byte_errors against
/// the planted payload; TET-KASLR fills the found_*/slot fields instead.
struct AttackResult {
  std::string attack;          // registry name ("md", "kaslr", ...)
  bool success = false;
  std::vector<std::uint8_t> bytes;  // decoded payload (channels)
  std::size_t byte_errors = 0;
  std::size_t probes = 0;      // gadget executions
  std::uint64_t cycles = 0;    // simulated cycles, measured centrally
  double seconds = 0.0;        // cycles on the machine's clock
  /// Weakest per-byte decode confidence (ArgmaxAnalyzer vote margin for
  /// channels, slot vote margin for KASLR); 1.0 when nothing was decoded.
  double confidence = 1.0;
  /// Bytes (or sweeps) whose adaptive budget ran out below the threshold.
  std::size_t gave_up = 0;
  /// ToTE observations across all probes (Fig. 1b view); per-slot scores
  /// for KASLR.
  stats::Histogram tote;

  // TET-KASLR extras (found_slot = -1 for channel attacks).
  int found_slot = -1;
  std::uint64_t found_base = 0;
  std::uint64_t true_base = 0;
  /// Per-slot best scores (lower = mapped candidate), for plotting.
  std::vector<std::uint64_t> slot_scores;
};

class Attack {
 public:
  virtual ~Attack() = default;
  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;

  /// Registry name of this attack ("cc", "md", ...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const AttackOptions& options() const noexcept { return opt_; }

  /// The unified entry point: plant `payload` as the secret, leak it back,
  /// and report. Wall time (cycles/seconds) and the byte-error comparison
  /// are accounted here, identically for every class.
  [[nodiscard]] AttackResult run(std::span<const std::uint8_t> payload);

 protected:
  Attack(os::Machine& m, std::string name, AttackOptions opt)
      : m_(m), opt_(std::move(opt)), name_(std::move(name)) {}

  /// Class body: plant the payload, probe, decode into `r`. Timing and the
  /// payload comparison are handled by run().
  virtual void execute(std::span<const std::uint8_t> payload,
                       AttackResult& r) = 0;

  /// How decode_adaptive() turns the analyzer's samples into a byte.
  /// Votes is the paper's per-batch argmax ballot; Mean decodes (and
  /// measures confidence) from the per-value mean ToTE — robust when a
  /// value's window only opens in a minority of batches, as happens for
  /// rewind's predictor-phase-sensitive probes.
  enum class DecodeBy : std::uint8_t { Votes, Mean };

  /// Shared per-byte decode loop. `run_batch` performs one full test-value
  /// sweep, feeding `an` (and bumping r.probes); the base runs `initial`
  /// batches, then — under opt_.adaptive — doubles the total until the
  /// decode margin (per `by`) clears the threshold or the budget cap. Folds
  /// the analyzer's confidence (min) and histogram into `r` and returns the
  /// decoded byte.
  std::uint8_t decode_adaptive(AttackResult& r, ArgmaxAnalyzer& an,
                               int initial,
                               const std::function<void()>& run_batch,
                               DecodeBy by = DecodeBy::Votes);

  /// Budget checkpoint: fire the injection hook (if any), then throw
  /// BudgetExceeded when the attack has burned past its simulated-cycle or
  /// wall-clock budget. run() checks once on entry; decode_adaptive()
  /// checks per batch; execute() bodies with their own probe loops (KASLR's
  /// round sweep) call it per iteration so a wedged loop is bounded too.
  void checkpoint();

  os::Machine& m_;
  AttackOptions opt_;

 private:
  std::string name_;
  // run()-relative budget origins, set on every run() entry.
  std::uint64_t run_start_cycle_ = 0;
  std::chrono::steady_clock::time_point run_start_wall_{};
};

}  // namespace whisper::core
