// The unified attack interface.
//
// Every ToTE attack (TET-CC, TET-MD, TET-ZBL, TET-RSB, TET-V1, TET-KASLR)
// derives from core::Attack and reports through one AttackResult: callers —
// the runner, the CLI, the bench harnesses — construct any attack by name
// via core::make_attack() (attacks/registry.h) and never touch a per-class
// result type.
//
//   auto atk = core::make_attack("md", m, {.adaptive = true});
//   const core::AttackResult r = atk->run(secret_bytes);
//   // r.bytes holds the leaked copy, r.confidence the weakest byte's vote
//   // margin, r.gave_up how many bytes exhausted their batch budget.
//
// run() plants the payload where the class's threat model says the secret
// lives (kernel memory for MD, the victim's LFB stream for ZBL, gadget-
// reachable data for RSB/V1, the shared page for CC; KASLR ignores it),
// leaks it back, and accounts wall time once, centrally — per-class timing
// code used to diverge (the V1/RSB paths never filled `seconds`).
//
// Adaptive decoding (opt-in via AttackOptions::adaptive): each byte starts
// at the class's default batch count and escalates exponentially until the
// ArgmaxAnalyzer vote margin clears `confidence_threshold` or the batch
// budget is spent — a byte that never converges is counted in `gave_up`
// instead of being reported as silently wrong.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/gadgets.h"
#include "os/machine.h"
#include "stats/histogram.h"

namespace whisper::core {

/// Knobs shared by every attack. Derived classes embed this as the base of
/// their own Options aggregate and add class-specific knobs; unset optionals
/// fall back to the class's defaults. Note the C++20 aggregate rule: with a
/// base class in the aggregate, designated initializers can only name the
/// *derived* members — base overrides take an inner braced list,
/// `Options{{.batches = 3}, .trainings_per_probe = 2}`.
struct AttackOptions {
  /// Argmax batches per byte (TET-KASLR: probe rounds per sweep).
  std::optional<int> batches;
  /// Transient-window kind override (TSX vs signal), where the class
  /// supports both.
  std::optional<WindowKind> window;

  /// Adaptive escalation: retry each byte with exponentially more batches
  /// until the vote-margin confidence clears `confidence_threshold` or the
  /// total reaches `batch_budget`.
  bool adaptive = false;
  double confidence_threshold = 0.5;
  /// Total batch cap per byte under `adaptive`; 0 = 8× the initial count.
  int batch_budget = 0;
};

/// What any attack reports. Channel attacks fill bytes/byte_errors against
/// the planted payload; TET-KASLR fills the found_*/slot fields instead.
struct AttackResult {
  std::string attack;          // registry name ("md", "kaslr", ...)
  bool success = false;
  std::vector<std::uint8_t> bytes;  // decoded payload (channels)
  std::size_t byte_errors = 0;
  std::size_t probes = 0;      // gadget executions
  std::uint64_t cycles = 0;    // simulated cycles, measured centrally
  double seconds = 0.0;        // cycles on the machine's clock
  /// Weakest per-byte decode confidence (ArgmaxAnalyzer vote margin for
  /// channels, slot vote margin for KASLR); 1.0 when nothing was decoded.
  double confidence = 1.0;
  /// Bytes (or sweeps) whose adaptive budget ran out below the threshold.
  std::size_t gave_up = 0;
  /// ToTE observations across all probes (Fig. 1b view); per-slot scores
  /// for KASLR.
  stats::Histogram tote;

  // TET-KASLR extras (found_slot = -1 for channel attacks).
  int found_slot = -1;
  std::uint64_t found_base = 0;
  std::uint64_t true_base = 0;
  /// Per-slot best scores (lower = mapped candidate), for plotting.
  std::vector<std::uint64_t> slot_scores;
};

class Attack {
 public:
  virtual ~Attack() = default;
  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;

  /// Registry name of this attack ("cc", "md", ...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const AttackOptions& options() const noexcept { return opt_; }

  /// The unified entry point: plant `payload` as the secret, leak it back,
  /// and report. Wall time (cycles/seconds) and the byte-error comparison
  /// are accounted here, identically for every class.
  [[nodiscard]] AttackResult run(std::span<const std::uint8_t> payload);

 protected:
  Attack(os::Machine& m, std::string name, AttackOptions opt)
      : m_(m), opt_(std::move(opt)), name_(std::move(name)) {}

  /// Class body: plant the payload, probe, decode into `r`. Timing and the
  /// payload comparison are handled by run().
  virtual void execute(std::span<const std::uint8_t> payload,
                       AttackResult& r) = 0;

  /// Shared per-byte decode loop. `run_batch` performs one full test-value
  /// sweep, feeding `an` (and bumping r.probes); the base runs `initial`
  /// batches, then — under opt_.adaptive — doubles the total until the vote
  /// margin clears the threshold or the budget cap. Folds the analyzer's
  /// confidence (min) and histogram into `r` and returns the decoded byte.
  std::uint8_t decode_adaptive(AttackResult& r, ArgmaxAnalyzer& an,
                               int initial,
                               const std::function<void()>& run_batch);

  os::Machine& m_;
  AttackOptions opt_;

 private:
  std::string name_;
};

}  // namespace whisper::core
