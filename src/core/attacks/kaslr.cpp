#include "core/attacks/kaslr.h"

#include <algorithm>
#include <limits>

namespace whisper::core {

TetKaslr::TetKaslr(os::Machine& m, Options opt)
    : m_(m), opt_(opt),
      window_(opt.window.value_or(preferred_window(m.config()))),
      gadget_(make_kaslr_gadget(window_)) {}

std::uint64_t TetKaslr::probe_once(std::uint64_t vaddr, bool evict) {
  if (evict) m_.evict_tlbs();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = vaddr;
  // Alternate the Jcc direction so the probe branch stays weakly predicted —
  // the pipeline-stall amplifier of Listing 2.
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = jcc_parity_ ? 1 : 0;
  jcc_parity_ = !jcc_parity_;
  return run_tote(m_, gadget_, regs);
}

TetKaslr::Result TetKaslr::run() {
  Result r;
  r.true_base = m_.kernel().kernel_base();
  const bool double_probe = opt_.double_probe.value_or(m_.kernel().flare());
  const std::uint64_t probe_offset =
      m_.kernel().kpti() ? os::kKptiTrampolineOffset : 0;

  const std::uint64_t start = m_.core().cycle();
  r.slot_scores.assign(os::kKaslrSlots,
                       std::numeric_limits<std::uint64_t>::max());

  for (int s = 0; s < os::kKaslrSlots; ++s) {
    const std::uint64_t target = os::kKaslrRegionStart +
                                 static_cast<std::uint64_t>(s) *
                                     os::kKaslrSlotBytes +
                                 probe_offset;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (int round = 0; round < opt_.rounds; ++round) {
      std::uint64_t tote;
      if (double_probe) {
        // First probe (after eviction) warms the TLB iff the target is
        // genuinely mapped; the second probe is the measurement.
        (void)probe_once(target, /*evict=*/true);
        ++r.probes;
        tote = probe_once(target, /*evict=*/false);
      } else {
        tote = probe_once(target, /*evict=*/true);
      }
      ++r.probes;
      if (tote != 0) best = std::min(best, tote);
    }
    r.slot_scores[static_cast<std::size_t>(s)] = best;
  }

  // §4.5: scan for "the first mapped address, which marks the initiation of
  // the kernel image". The image spans several slots, so a global argmin
  // would land on an arbitrary image page; instead classify slots as mapped
  // (fast) via a threshold between the fastest score and the population
  // median, and take the first mapped slot.
  std::vector<std::uint64_t> sorted = r.slot_scores;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t fastest = sorted.front();
  const std::uint64_t median = sorted[sorted.size() / 2];
  const std::uint64_t threshold = fastest + (median - fastest) / 2;
  r.found_slot = 0;
  for (int s = 0; s < os::kKaslrSlots; ++s) {
    if (r.slot_scores[static_cast<std::size_t>(s)] <= threshold) {
      r.found_slot = s;
      break;
    }
  }
  r.found_base = os::kKaslrRegionStart +
                 static_cast<std::uint64_t>(r.found_slot) *
                     os::kKaslrSlotBytes;
  r.cycles = m_.core().cycle() - start;
  r.seconds = m_.seconds(r.cycles);
  r.success = r.found_base == r.true_base;
  return r;
}

}  // namespace whisper::core
