#include "core/attacks/kaslr.h"

#include <algorithm>
#include <limits>

namespace whisper::core {

TetKaslr::TetKaslr(os::Machine& m, Options opt)
    : Attack(m, "kaslr", opt),
      rounds_(opt.batches.value_or(opt.rounds)),
      double_probe_(opt.double_probe),
      window_(opt.window.value_or(preferred_window(m.config()))),
      gadget_(make_kaslr_gadget(window_)) {}

std::uint64_t TetKaslr::probe_once(std::uint64_t vaddr, bool evict) {
  if (evict) m_.evict_tlbs();
  std::array<std::uint64_t, isa::kNumRegs> regs{};
  regs[static_cast<std::size_t>(isa::Reg::RCX)] = vaddr;
  // Alternate the Jcc direction so the probe branch stays weakly predicted —
  // the pipeline-stall amplifier of Listing 2.
  regs[static_cast<std::size_t>(isa::Reg::RBX)] = jcc_parity_ ? 1 : 0;
  jcc_parity_ = !jcc_parity_;
  return run_tote(m_, gadget_, regs);
}

std::vector<std::uint64_t> TetKaslr::sweep_round(std::uint64_t probe_offset,
                                                 bool double_probe,
                                                 AttackResult& r) {
  std::vector<std::uint64_t> scores(
      os::kKaslrSlots, std::numeric_limits<std::uint64_t>::max());
  for (int s = 0; s < os::kKaslrSlots; ++s) {
    const std::uint64_t target = os::kKaslrRegionStart +
                                 static_cast<std::uint64_t>(s) *
                                     os::kKaslrSlotBytes +
                                 probe_offset;
    std::uint64_t tote;
    if (double_probe) {
      // First probe (after eviction) warms the TLB iff the target is
      // genuinely mapped; the second probe is the measurement.
      (void)probe_once(target, /*evict=*/true);
      ++r.probes;
      tote = probe_once(target, /*evict=*/false);
    } else {
      tote = probe_once(target, /*evict=*/true);
    }
    ++r.probes;
    if (tote != 0) {
      const auto i = static_cast<std::size_t>(s);
      scores[i] = tote;
      r.slot_scores[i] = std::min(r.slot_scores[i], tote);
    }
  }
  return scores;
}

int TetKaslr::first_mapped_slot(const std::vector<std::uint64_t>& scores) {
  // §4.5: scan for "the first mapped address, which marks the initiation of
  // the kernel image". The image spans several slots, so a global argmin
  // would land on an arbitrary image page; instead classify slots as mapped
  // (fast) via a threshold between the fastest score and the population
  // median, and take the first mapped slot.
  std::vector<std::uint64_t> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t fastest = sorted.front();
  const std::uint64_t median = sorted[sorted.size() / 2];
  const std::uint64_t threshold = fastest + (median - fastest) / 2;
  for (int s = 0; s < os::kKaslrSlots; ++s)
    if (scores[static_cast<std::size_t>(s)] <= threshold) return s;
  return 0;
}

void TetKaslr::execute(std::span<const std::uint8_t> /*payload*/,
                       AttackResult& r) {
  r.true_base = m_.kernel().kernel_base();
  const bool double_probe = double_probe_.value_or(m_.kernel().flare());
  const std::uint64_t probe_offset =
      m_.kernel().kpti() ? os::kKptiTrampolineOffset : 0;

  r.slot_scores.assign(os::kKaslrSlots,
                       std::numeric_limits<std::uint64_t>::max());
  std::vector<std::uint32_t> votes(os::kKaslrSlots, 0);
  int rounds_done = 0;

  const auto run_rounds = [&](int n) {
    for (int i = 0; i < n; ++i) {
      checkpoint();  // bound a wedged sweep per round, like per-batch decode
      ++votes[static_cast<std::size_t>(
          first_mapped_slot(sweep_round(probe_offset, double_probe, r)))];
      ++rounds_done;
    }
  };
  // Cross-round vote margin, the KASLR analogue of
  // ArgmaxAnalyzer::confidence().
  const auto vote_margin = [&] {
    std::uint32_t top = 0, second = 0;
    for (const std::uint32_t v : votes) {
      if (v > top) {
        second = top;
        top = v;
      } else if (v > second) {
        second = v;
      }
    }
    return rounds_done > 0
               ? static_cast<double>(top - second) / rounds_done
               : 0.0;
  };

  const int n0 = std::max(1, rounds_);
  run_rounds(n0);
  if (opt_.adaptive) {
    const int budget =
        opt_.batch_budget > 0 ? std::max(opt_.batch_budget, n0) : 8 * n0;
    while (vote_margin() < opt_.confidence_threshold && rounds_done < budget)
      run_rounds(std::min(rounds_done, budget - rounds_done));
    if (vote_margin() < opt_.confidence_threshold) ++r.gave_up;
  }

  r.confidence = vote_margin();
  r.found_slot = static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
  r.found_base = os::kKaslrRegionStart +
                 static_cast<std::uint64_t>(r.found_slot) *
                     os::kKaslrSlotBytes;
  r.success = r.found_base == r.true_base;
  for (const std::uint64_t score : r.slot_scores)
    if (score != std::numeric_limits<std::uint64_t>::max())
      r.tote.add(static_cast<std::int64_t>(score));
}

}  // namespace whisper::core
