// SpectreRewind (Fustos et al., PAPERS.md): contention on the single
// non-pipelined divider as the covert channel — no shared memory, no flush,
// no cache footprint at all.
//
// A V1-style flushed bounds check opens the transient window; inside it a
// branchless CMOV turns the secret byte into the divisor of a transient
// FDIV. When the secret equals the test value the divisor is hard, the
// divide occupies the divider through the receiver chain's next bubble, and
// every later receiver divide — all older, to-be-retired instructions —
// lands ~div_latency later. The fenced closing RDTSC waits for the chain,
// so the arg-max of ToTE over test values decodes the byte (Polarity::Max,
// like TET-MD/V1).
//
// Because the residue lives in an execution unit rather than the cache
// hierarchy, flush-on-clear and KPTI-class defenses do not touch it
// (docs/DEFENSE_MATRIX.md); only stopping the transient FDIV from issuing —
// lfence-after-branch or a speculation-window clamp — closes the channel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class SpectreRewind final : public Attack {
 public:
  static constexpr int kDefaultBatches = 3;

  struct Options : AttackOptions {
    int trainings_per_probe = 4;  // in-bounds runs before each OOB probe
    int receiver_divs = 12;       // to-be-retired divide chain length
  };

  /// OOB probes more than this far above their own training-run floor are
  /// dropped as interference (a timer handler costs ~2500 cycles; the
  /// contention signal is ~div_latency). Mean decode has no vote damping,
  /// so one accepted outlier would outweigh every clean sample.
  static constexpr std::uint64_t kOutlierSlack = 200;

  explicit SpectreRewind(os::Machine& m) : SpectreRewind(m, Options{}) {}
  SpectreRewind(os::Machine& m, Options opt);

  /// Leak bytes at `secret_vaddr`, which must lie past the bounds-checked
  /// array at kArrayBase whose length word lives at kLenAddr.
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t secret_vaddr,
                                               std::size_t len);
  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t secret_vaddr);

  /// Victim layout, disjoint from TetSpectreV1's so the two can share a
  /// machine in tests. run(payload) plants the payload at
  /// kArrayBase + kSecretOffset.
  static constexpr std::uint64_t kArrayBase =
      os::Machine::kDataBase + 0x12000;
  static constexpr std::uint64_t kLenAddr = os::Machine::kDataBase + 0xff80;
  static constexpr std::uint64_t kArrayLen = 16;
  static constexpr std::uint64_t kSecretOffset = 0x80;

  void install_victim(os::Machine& m) const;

  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  std::uint64_t probe(std::uint64_t index, int test_value, AttackResult& r);
  std::uint8_t leak_byte_into(std::uint64_t secret_vaddr, AttackResult& r);

  int trainings_per_probe_;
  GadgetProgram gadget_;
  /// Victim activity: one architectural load of the secret line (RDI), as
  /// the paper's same-address-space victim keeps its own secret
  /// cache-resident. Without it the transient secret load eats a DRAM
  /// round-trip and the contending FDIV is not ready before the bound
  /// load resolves and closes the window.
  isa::Program touch_;
  ArgmaxAnalyzer analyzer_{Polarity::Max};
};

}  // namespace whisper::core
