// TET-Meltdown (paper §4.3.1): leak kernel memory across the privilege
// boundary, transmitting each byte over the Whisper channel — the secret-
// equality Jcc inside the transient window lengthens ToTE when it triggers,
// and the batch-argmax of ToTE recovers the byte.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetMeltdown {
 public:
  struct Options {
    int batches = 6;                      // argmax votes per byte
    std::optional<WindowKind> window;     // default: TSX if available
  };

  explicit TetMeltdown(os::Machine& m) : TetMeltdown(m, Options{}) {}
  TetMeltdown(os::Machine& m, Options opt);

  /// Leak one byte at the kernel virtual address.
  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t kvaddr);
  /// Leak `len` consecutive bytes.
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t kvaddr,
                                               std::size_t len);

  [[nodiscard]] const AttackStats& stats() const noexcept { return stats_; }
  /// Analysis state of the most recent leak_byte (for Fig. 1b-style plots).
  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }
  [[nodiscard]] WindowKind window() const noexcept { return window_; }

 private:
  os::Machine& m_;
  Options opt_;
  WindowKind window_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Max};
  AttackStats stats_;
};

}  // namespace whisper::core
