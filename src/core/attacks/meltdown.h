// TET-Meltdown (paper §4.3.1): leak kernel memory across the privilege
// boundary, transmitting each byte over the Whisper channel — the secret-
// equality Jcc inside the transient window lengthens ToTE when it triggers,
// and the batch-argmax of ToTE recovers the byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"

namespace whisper::core {

class TetMeltdown final : public Attack {
 public:
  static constexpr int kDefaultBatches = 6;

  struct Options : AttackOptions {};

  explicit TetMeltdown(os::Machine& m, Options opt = Options{});

  /// Unified entry: run(payload) plants the payload as a kernel secret via
  /// Machine::plant_kernel_secret and leaks it back.

  /// Typed conveniences for callers that already hold a kernel address.
  [[nodiscard]] std::uint8_t leak_byte(std::uint64_t kvaddr);
  [[nodiscard]] std::vector<std::uint8_t> leak(std::uint64_t kvaddr,
                                               std::size_t len);

  /// Analysis state of the most recent byte (for Fig. 1b-style plots).
  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }
  [[nodiscard]] WindowKind window() const noexcept { return window_; }

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  std::uint8_t leak_byte_into(std::uint64_t kvaddr, AttackResult& r);

  WindowKind window_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Max};
};

}  // namespace whisper::core
