// ToTE analysis: the paper's decoding procedure (§4.3.1).
//
// "We count the argmax of ToTE after traversing around the test value from 0
// to 255. The argmax of the counting result is the secret value." — each
// batch sweeps all test values once; the extreme (max for exception windows,
// min for early-clear windows) votes for one candidate; the candidate with
// the most votes wins.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "stats/histogram.h"

namespace whisper::core {

enum class Polarity : std::uint8_t {
  Max,  // trigger lengthens ToTE (TET-CC, TET-MD)
  Min,  // trigger shortens ToTE (TET-ZBL, TET-RSB)
};

class ArgmaxAnalyzer {
 public:
  explicit ArgmaxAnalyzer(Polarity polarity) : polarity_(polarity) {}

  /// Record one probe of `test_value` in the current batch.
  /// Samples of 0 (failed probes) are ignored.
  void add(int test_value, std::uint64_t tote);

  /// Close the current batch: the batch's extreme test value receives one
  /// vote. Batches with no samples are ignored.
  void end_batch();

  /// The decoded byte: the test value with the most batch votes.
  [[nodiscard]] int decode() const;

  /// Alternative decode: extreme of the per-value *mean* ToTE. More robust
  /// when rare predictor artefacts (e.g. a taken-trained follower value)
  /// produce occasional outliers that steal batch votes.
  [[nodiscard]] int decode_by_mean() const;

  /// Margin confidence of decode_by_mean() in [0, 1]: (top mean − runner-up
  /// mean) / (top mean − bottom mean), extremes per polarity, over test
  /// values with samples. 1 means one value stands clear of a flat field;
  /// 0 means the means are flat (no signal) or fewer than two values have
  /// samples.
  [[nodiscard]] double mean_confidence() const;

  /// Vote-margin confidence of decode() in [0, 1]: (top votes − runner-up
  /// votes) / batches. 1 means every batch voted the same value; 0 means a
  /// tie (or no batches yet). This is what the adaptive escalation loop
  /// thresholds against — under noise the margin grows with batches when a
  /// true signal exists and stays near 0 when it does not.
  [[nodiscard]] double confidence() const;

  [[nodiscard]] const std::array<std::uint32_t, 256>& votes() const noexcept {
    return votes_;
  }
  /// ToTE frequency histogram across all samples (Fig. 1b top).
  [[nodiscard]] const stats::Histogram& tote_histogram() const noexcept {
    return hist_;
  }
  /// Per-test-value mean ToTE (Fig. 1b argmax panels).
  [[nodiscard]] std::array<double, 256> mean_tote_by_value() const;

  [[nodiscard]] std::size_t batches() const noexcept { return batches_; }
  void reset();

 private:
  Polarity polarity_;
  std::array<std::uint32_t, 256> votes_{};
  stats::Histogram hist_;
  std::array<std::uint64_t, 256> sum_{};
  std::array<std::uint32_t, 256> count_{};

  // Current batch extreme.
  bool batch_has_sample_ = false;
  int batch_arg_ = 0;
  std::uint64_t batch_extreme_ = 0;
  std::size_t batches_ = 0;
};

}  // namespace whisper::core
