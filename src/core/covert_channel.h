// TET-CC (paper §4.1): the covert channel built directly on the Whisper
// primitive. The sender places a byte in shared memory; the receiver sweeps
// test values through the Fig. 1a gadget — the value whose probes produce
// the longest ToTE is the transmitted byte. No cache line is ever used to
// carry the secret (transient-only, stateless — Table 1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/analyzer.h"
#include "core/attacks/attack.h"
#include "core/attacks/common.h"
#include "core/gadgets.h"
#include "os/machine.h"
#include "stats/error_rate.h"

namespace whisper::core {

class TetCovertChannel final : public Attack {
 public:
  static constexpr int kDefaultBatches = 3;

  struct Options : AttackOptions {
    /// Cross-process synchronisation cost charged per transmitted byte
    /// (cycles); defaults to the CPU config's channel_sync_cycles.
    std::optional<int> sync_cycles;
  };

  explicit TetCovertChannel(os::Machine& m, Options opt = Options{});

  /// Transmit `bytes` sender→receiver and report throughput + error rate
  /// exactly as §4.1 does for 1k random bytes. Thin wrapper over run().
  [[nodiscard]] stats::ChannelReport transmit(
      std::span<const std::uint8_t> bytes);

  /// Receive a single byte already placed in the shared page.
  [[nodiscard]] std::uint8_t receive_byte();

  [[nodiscard]] const ArgmaxAnalyzer& last_analysis() const noexcept {
    return analyzer_;
  }

 protected:
  void execute(std::span<const std::uint8_t> payload, AttackResult& r) override;

 private:
  std::uint8_t receive_byte_into(AttackResult& r);

  std::optional<int> sync_cycles_;
  WindowKind window_;
  GadgetProgram gadget_;
  ArgmaxAnalyzer analyzer_{Polarity::Max};
};

}  // namespace whisper::core
